#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/pegasus.h"
#include "src/graph/generators.h"
#include "src/query/graph_view.h"
#include "src/query/summary_queries.h"
#include "tests/test_util.h"

namespace pegasus {
namespace {

using ::pegasus::testing::PathGraph;
using ::pegasus::testing::TwoCliquesGraph;

TEST(GraphViewTest, BfsMatchesDirectBfs) {
  Graph g = GenerateBarabasiAlbert(100, 2, 101);
  GraphNeighborhoodView view(g);
  for (NodeId q : {0u, 50u, 99u}) {
    EXPECT_EQ(ViewBfsDistances(view, q), BfsDistances(g, q));
  }
}

TEST(GraphViewTest, SummaryBfsMatchesSummaryQueries) {
  Graph g = GenerateBarabasiAlbert(120, 3, 102);
  auto result = *SummarizeGraphToRatio(g, {0}, 0.5);
  SummaryNeighborhoodView view(result.summary);
  for (NodeId q : {0u, 33u, 119u}) {
    EXPECT_EQ(ViewBfsDistances(view, q),
              FastSummaryHopDistances(result.summary, q))
        << "query " << q;
  }
}

TEST(GraphViewTest, DfsVisitsWholeComponent) {
  Graph g = TwoCliquesGraph(4);
  GraphNeighborhoodView view(g);
  auto order = ViewDfsPreorder(view, 0);
  EXPECT_EQ(order.size(), g.num_nodes());
  EXPECT_EQ(order[0], 0u);
  std::sort(order.begin(), order.end());
  EXPECT_EQ(std::adjacent_find(order.begin(), order.end()), order.end());
}

TEST(GraphViewTest, DfsOnSummaryVisitsReachableSet) {
  Graph g = GenerateBarabasiAlbert(80, 2, 103);
  auto result = *SummarizeGraphToRatio(g, {}, 0.5);
  SummaryNeighborhoodView view(result.summary);
  auto order = ViewDfsPreorder(view, 5);
  auto dist = FastSummaryHopDistances(result.summary, 5);
  size_t reachable = 0;
  for (uint32_t d : dist) reachable += (d != kUnreachable);
  EXPECT_EQ(order.size(), reachable);
}

TEST(GraphViewTest, ConnectedComponentsMatchGraph) {
  Graph g = BuildGraph(7, {{0, 1}, {1, 2}, {3, 4}, {5, 6}});
  GraphNeighborhoodView view(g);
  auto labels = ViewConnectedComponents(view);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_NE(labels[3], labels[5]);
}

TEST(GraphViewTest, DegreesMatchOnBothViews) {
  Graph g = GenerateBarabasiAlbert(60, 2, 104);
  GraphNeighborhoodView gv(g);
  auto deg = ViewDegrees(gv);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(deg[u], g.degree(u));
  }
  SummaryGraph s = SummaryGraph::Identity(g);
  SummaryNeighborhoodView sv(s);
  EXPECT_EQ(ViewDegrees(sv), deg);
}

TEST(GraphViewTest, SameGenericCodeRunsOnBothViews) {
  // The paper's Appendix-A claim, demonstrated literally: one algorithm
  // instantiation pattern, two substrates, and on an identity summary the
  // results coincide exactly.
  Graph g = PathGraph(12);
  SummaryGraph s = SummaryGraph::Identity(g);
  GraphNeighborhoodView gv(g);
  SummaryNeighborhoodView sv(s);
  EXPECT_EQ(ViewBfsDistances(gv, 3), ViewBfsDistances(sv, 3));
  // DFS preorder depends on neighbor enumeration order (the summary view
  // iterates hash maps), so compare the visited sets.
  auto dfs_g = ViewDfsPreorder(gv, 3);
  auto dfs_s = ViewDfsPreorder(sv, 3);
  std::sort(dfs_g.begin(), dfs_g.end());
  std::sort(dfs_s.begin(), dfs_s.end());
  EXPECT_EQ(dfs_g, dfs_s);
  EXPECT_EQ(ViewConnectedComponents(gv), ViewConnectedComponents(sv));
}

}  // namespace
}  // namespace pegasus
