#include <gtest/gtest.h>

#include "src/baselines/grass.h"
#include "src/eval/error_eval.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace pegasus {
namespace {

TEST(GrassTest, ReachesTargetSupernodeCount) {
  Graph g = GenerateBarabasiAlbert(120, 2, 8);
  auto result = *GrassSummarize(g, 40);
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.summary.num_supernodes(), 40u);
}

TEST(GrassTest, OutputIsDense) {
  // GraSS keeps a superedge for every supernode pair with >= 1 real edge.
  Graph g = ::pegasus::testing::TwoCliquesGraph(4);
  auto result = *GrassSummarize(g, 4);
  const SummaryGraph& s = result.summary;
  for (const Edge& e : g.CanonicalEdges()) {
    EXPECT_TRUE(
        s.HasSuperedge(s.supernode_of(e.u), s.supernode_of(e.v)))
        << "edge " << e.u << "-" << e.v << " uncovered";
  }
}

TEST(GrassTest, PrefersTwinMerges) {
  Graph g = ::pegasus::testing::Fig3Graph();
  // A high sampling constant makes SamplePairs effectively exhaustive on
  // this 5-node instance, so the greedy chooses the optimal merges.
  auto result = *GrassSummarize(g, 3, {.sample_pairs_c = 25.0, .seed = 2});
  // The error-minimizing 3-supernode partition co-clusters the twin pairs
  // {0,1} and {2,3} (zero-error merges), leaving {4} alone.
  const SummaryGraph& s = result.summary;
  EXPECT_EQ(s.supernode_of(0), s.supernode_of(1));
  EXPECT_EQ(s.supernode_of(2), s.supernode_of(3));
  EXPECT_NE(s.supernode_of(0), s.supernode_of(4));
  EXPECT_NE(s.supernode_of(2), s.supernode_of(4));
}

TEST(GrassTest, TimeLimitReported) {
  Graph g = GenerateBarabasiAlbert(2000, 3, 9);
  GrassConfig config;
  config.time_limit_seconds = 1e-6;
  auto result = *GrassSummarize(g, 10, config);
  EXPECT_TRUE(result.timed_out);
}

TEST(GrassTest, ValidPartition) {
  Graph g = GenerateBarabasiAlbert(100, 2, 10);
  auto result = *GrassSummarize(g, 25);
  std::vector<uint32_t> seen(g.num_nodes(), 0);
  for (SupernodeId a : result.summary.ActiveSupernodes()) {
    for (NodeId u : result.summary.members(a)) ++seen[u];
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) EXPECT_EQ(seen[u], 1u);
}

TEST(GrassTest, InvalidInputsRejectedTyped) {
  Graph g = GenerateBarabasiAlbert(30, 2, 10);
  EXPECT_EQ(GrassSummarize(g, 0).status().code(),
            StatusCode::kInvalidArgument);
  GrassConfig config;
  config.sample_pairs_c = 0.0;
  EXPECT_EQ(GrassSummarize(g, 5, config).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pegasus
