#include <gtest/gtest.h>

#include "src/core/lossless.h"
#include "src/graph/datasets.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace pegasus {
namespace {

TEST(LosslessTest, RestoreIsAlwaysExact) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Graph g = GenerateBarabasiAlbertTails(200, 3, 0.6, seed);
    auto result = LosslessSummarize(g, {.seed = seed});
    Graph restored = RestoreGraph(result.summary, result.corrections);
    EXPECT_EQ(restored.CanonicalEdges(), g.CanonicalEdges())
        << "seed " << seed;
  }
}

TEST(LosslessTest, CompressesTwinRichGraph) {
  // An internet-like analog with many degree-1 leaf twins compresses
  // losslessly below the plain edge-list encoding.
  Dataset ds = MakeDataset(DatasetId::kCaida, DatasetScale::kTiny, 5);
  auto result = LosslessSummarize(ds.graph);
  EXPECT_LT(result.compression_ratio, 1.0);
  EXPECT_EQ(
      RestoreGraph(result.summary, result.corrections).CanonicalEdges(),
      ds.graph.CanonicalEdges());
}

TEST(LosslessTest, PerfectTwinsCompressHeavily) {
  // A star of k leaves is one twin family: the summary needs 2 supernodes
  // and 1 superedge regardless of k.
  Graph g = ::pegasus::testing::StarGraph(64);
  auto result = LosslessSummarize(g);
  EXPECT_LE(result.summary.num_supernodes(), 4u);
  EXPECT_TRUE(result.corrections.positive.empty());
  EXPECT_TRUE(result.corrections.negative.empty());
  EXPECT_LT(result.compression_ratio, 0.5);
}

TEST(LosslessTest, IncompressibleGraphStaysNearIdentity) {
  // An Erdos-Renyi graph has no structure to exploit; the encoding should
  // stay in the same ballpark as the input (identity summary overhead is
  // the membership term).
  Graph g = GenerateErdosRenyi(150, 600, 9);
  auto result = LosslessSummarize(g);
  EXPECT_EQ(
      RestoreGraph(result.summary, result.corrections).CanonicalEdges(),
      g.CanonicalEdges());
  EXPECT_LT(result.compression_ratio, 1.6);
}

TEST(LosslessTest, CliqueCompressesToSelfLoop) {
  Graph g = ::pegasus::testing::CompleteGraph(32);
  auto result = LosslessSummarize(g);
  EXPECT_LE(result.summary.num_supernodes(), 2u);
  EXPECT_TRUE(result.corrections.positive.empty());
  EXPECT_TRUE(result.corrections.negative.empty());
  EXPECT_LT(result.compression_ratio, 0.1);
}

TEST(LosslessTest, Deterministic) {
  Graph g = GenerateBarabasiAlbertTails(150, 3, 0.5, 11);
  auto a = LosslessSummarize(g, {.seed = 4});
  auto b = LosslessSummarize(g, {.seed = 4});
  EXPECT_DOUBLE_EQ(a.total_bits, b.total_bits);
  EXPECT_EQ(a.summary.num_supernodes(), b.summary.num_supernodes());
}

}  // namespace
}  // namespace pegasus
