#include <gtest/gtest.h>

#include "src/graph/bfs.h"
#include "src/graph/graph_builder.h"
#include "tests/test_util.h"

namespace pegasus {
namespace {

using ::pegasus::testing::CycleGraph;
using ::pegasus::testing::PathGraph;
using ::pegasus::testing::StarGraph;

TEST(BfsTest, PathDistances) {
  Graph g = PathGraph(5);
  auto d = BfsDistances(g, 0);
  for (NodeId u = 0; u < 5; ++u) EXPECT_EQ(d[u], u);
}

TEST(BfsTest, CycleDistances) {
  Graph g = CycleGraph(6);
  auto d = BfsDistances(g, 0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[5], 1u);
  EXPECT_EQ(d[3], 3u);
}

TEST(BfsTest, UnreachableNodes) {
  Graph g = BuildGraph(4, {{0, 1}});
  auto d = BfsDistances(g, 0);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(MultiSourceBfsTest, MinimumOverSources) {
  Graph g = PathGraph(10);
  auto d = MultiSourceBfsDistances(g, {0, 9});
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[9], 0u);
  EXPECT_EQ(d[4], 4u);
  EXPECT_EQ(d[5], 4u);
}

TEST(MultiSourceBfsTest, DuplicateSources) {
  Graph g = PathGraph(4);
  auto d = MultiSourceBfsDistances(g, {2, 2, 2});
  EXPECT_EQ(d[2], 0u);
  EXPECT_EQ(d[0], 2u);
}

TEST(MultiSourceBfsTest, MatchesMinOfSingleSourceRuns) {
  Graph g = StarGraph(8);
  auto multi = MultiSourceBfsDistances(g, {1, 5});
  auto d1 = BfsDistances(g, 1);
  auto d5 = BfsDistances(g, 5);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(multi[u], std::min(d1[u], d5[u]));
  }
}

TEST(BfsSampleTest, ReturnsRequestedCountInBfsOrder) {
  Graph g = PathGraph(10);
  auto sample = BfsSample(g, 3, 4);
  ASSERT_EQ(sample.size(), 4u);
  EXPECT_EQ(sample[0], 3u);
  // The next discovered nodes are 2 and 4 (in neighbor order), then 1.
  EXPECT_EQ(sample[1], 2u);
  EXPECT_EQ(sample[2], 4u);
  EXPECT_EQ(sample[3], 1u);
}

TEST(BfsSampleTest, CapsAtComponentSize) {
  Graph g = BuildGraph(5, {{0, 1}, {1, 2}});
  auto sample = BfsSample(g, 0, 100);
  EXPECT_EQ(sample.size(), 3u);
}

}  // namespace
}  // namespace pegasus
