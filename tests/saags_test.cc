#include <gtest/gtest.h>

#include "src/baselines/saags.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace pegasus {
namespace {

TEST(SaagsTest, ReachesTargetSupernodeCount) {
  Graph g = GenerateBarabasiAlbert(200, 2, 11);
  auto result = *SaagsSummarize(g, 50);
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.summary.num_supernodes(), 50u);
}

TEST(SaagsTest, ValidPartition) {
  Graph g = GenerateBarabasiAlbert(150, 3, 12);
  auto result = *SaagsSummarize(g, 30);
  std::vector<uint32_t> seen(g.num_nodes(), 0);
  for (SupernodeId a : result.summary.ActiveSupernodes()) {
    for (NodeId u : result.summary.members(a)) ++seen[u];
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) EXPECT_EQ(seen[u], 1u);
}

TEST(SaagsTest, DenseCoverage) {
  Graph g = ::pegasus::testing::TwoCliquesGraph(5);
  auto result = *SaagsSummarize(g, 4);
  const SummaryGraph& s = result.summary;
  for (const Edge& e : g.CanonicalEdges()) {
    EXPECT_TRUE(s.HasSuperedge(s.supernode_of(e.u), s.supernode_of(e.v)));
  }
}

TEST(SaagsTest, DeterministicForSeed) {
  Graph g = GenerateBarabasiAlbert(100, 2, 13);
  SaagsConfig config;
  config.seed = 5;
  auto a = *SaagsSummarize(g, 20, config);
  auto b = *SaagsSummarize(g, 20, config);
  EXPECT_EQ(a.summary.num_superedges(), b.summary.num_superedges());
}

TEST(SaagsTest, TimeLimitReported) {
  Graph g = GenerateBarabasiAlbert(3000, 3, 14);
  SaagsConfig config;
  config.time_limit_seconds = 1e-6;
  auto result = *SaagsSummarize(g, 10, config);
  EXPECT_TRUE(result.timed_out);
}

TEST(SaagsTest, InvalidInputsRejectedTyped) {
  Graph g = GenerateBarabasiAlbert(30, 2, 14);
  EXPECT_EQ(SaagsSummarize(g, 0).status().code(),
            StatusCode::kInvalidArgument);
  SaagsConfig config;
  config.sketch_width = 0;
  EXPECT_EQ(SaagsSummarize(g, 5, config).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pegasus
