#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/summary_graph.h"
#include "src/util/bits.h"
#include "tests/test_util.h"

namespace pegasus {
namespace {

using ::pegasus::testing::CompleteGraph;
using ::pegasus::testing::PathGraph;
using ::pegasus::testing::TwoCliquesGraph;

TEST(SummaryGraphTest, IdentityStructure) {
  Graph g = PathGraph(5);
  SummaryGraph s = SummaryGraph::Identity(g);
  EXPECT_EQ(s.num_nodes(), 5u);
  EXPECT_EQ(s.num_supernodes(), 5u);
  EXPECT_EQ(s.num_superedges(), 4u);
  for (NodeId u = 0; u < 5; ++u) {
    EXPECT_EQ(s.supernode_of(u), u);
    EXPECT_EQ(s.members(u).size(), 1u);
  }
  EXPECT_TRUE(s.HasSuperedge(0, 1));
  EXPECT_FALSE(s.HasSuperedge(0, 2));
}

TEST(SummaryGraphTest, IdentityReconstructsExactly) {
  Graph g = TwoCliquesGraph(3);
  SummaryGraph s = SummaryGraph::Identity(g);
  Graph r = s.Reconstruct();
  EXPECT_EQ(r.CanonicalEdges(), g.CanonicalEdges());
}

TEST(SummaryGraphTest, MergeUnionsMembers) {
  Graph g = PathGraph(4);
  SummaryGraph s = SummaryGraph::Identity(g);
  SupernodeId w = s.MergeSupernodes(1, 2);
  EXPECT_EQ(s.num_supernodes(), 3u);
  EXPECT_EQ(s.members(w).size(), 2u);
  EXPECT_EQ(s.supernode_of(1), w);
  EXPECT_EQ(s.supernode_of(2), w);
  EXPECT_TRUE(s.alive(w));
  EXPECT_FALSE(s.alive(w == 1 ? 2 : 1));
}

TEST(SummaryGraphTest, MergeErasesIncidentSuperedges) {
  Graph g = PathGraph(4);
  SummaryGraph s = SummaryGraph::Identity(g);
  // Before: superedges {0,1}, {1,2}, {2,3}.
  s.MergeSupernodes(1, 2);
  EXPECT_EQ(s.num_superedges(), 0u);  // all three touched supernode 1 or 2
}

TEST(SummaryGraphTest, MergeKeepsNonIncidentSuperedges) {
  Graph g = PathGraph(6);
  SummaryGraph s = SummaryGraph::Identity(g);
  s.MergeSupernodes(0, 1);
  // Superedges {2,3}, {3,4}, {4,5} survive.
  EXPECT_EQ(s.num_superedges(), 3u);
  EXPECT_TRUE(s.HasSuperedge(3, 4));
}

TEST(SummaryGraphTest, SelfLoopSemantics) {
  Graph g = CompleteGraph(4);
  SummaryGraph s = SummaryGraph::Identity(g);
  SupernodeId w = s.MergeSupernodes(0, 1);
  s.SetSuperedge(w, w, 1);
  EXPECT_TRUE(s.HasSuperedge(w, w));
  Graph r = s.Reconstruct();
  EXPECT_TRUE(r.HasEdge(0, 1));  // self-loop connects co-members
}

TEST(SummaryGraphTest, SetAndEraseSuperedge) {
  Graph g = PathGraph(4);
  SummaryGraph s = SummaryGraph::Identity(g);
  const uint64_t before = s.num_superedges();
  s.SetSuperedge(0, 2, 5);
  EXPECT_EQ(s.num_superedges(), before + 1);
  EXPECT_EQ(s.SuperedgeWeight(0, 2), 5u);
  EXPECT_EQ(s.SuperedgeWeight(2, 0), 5u);
  // Updating the weight does not change the count.
  s.SetSuperedge(0, 2, 7);
  EXPECT_EQ(s.num_superedges(), before + 1);
  EXPECT_TRUE(s.EraseSuperedge(2, 0));
  EXPECT_EQ(s.num_superedges(), before);
  EXPECT_FALSE(s.EraseSuperedge(2, 0));
}

TEST(SummaryGraphTest, SizeInBitsMatchesEq3) {
  Graph g = PathGraph(8);
  SummaryGraph s = SummaryGraph::Identity(g);
  // |S| = 8, |P| = 7, |V| = 8: 2*7*3 + 8*3 = 66.
  EXPECT_DOUBLE_EQ(s.SizeInBits(), 66.0);
}

TEST(SummaryGraphTest, SizeShrinksWithMerges) {
  Graph g = CompleteGraph(8);
  SummaryGraph s = SummaryGraph::Identity(g);
  const double before = s.SizeInBits();
  SupernodeId w = s.MergeSupernodes(0, 1);
  s.SetSuperedge(w, w, 1);
  EXPECT_LT(s.SizeInBits(), before);
}

TEST(SummaryGraphTest, WeightedSizeUsesMaxWeight) {
  Graph g = PathGraph(4);
  SummaryGraph s = SummaryGraph::Identity(g);
  // All weights 1: weighted size equals unweighted (log2 1 = 0).
  EXPECT_DOUBLE_EQ(s.SizeInBitsWeighted(), s.SizeInBits());
  s.SetSuperedge(0, 2, 4);
  EXPECT_DOUBLE_EQ(
      s.SizeInBitsWeighted(),
      static_cast<double>(s.num_superedges()) * (2.0 * Log2Bits(4) + 2.0) +
          4.0 * Log2Bits(4));
}

TEST(SummaryGraphTest, ActiveSupernodesTracksMerges) {
  Graph g = PathGraph(5);
  SummaryGraph s = SummaryGraph::Identity(g);
  s.MergeSupernodes(0, 1);
  s.MergeSupernodes(3, 4);
  auto active = s.ActiveSupernodes();
  EXPECT_EQ(active.size(), 3u);
  EXPECT_TRUE(std::is_sorted(active.begin(), active.end()));
}

TEST(SummaryGraphTest, FromPartitionGroupsNodes) {
  Graph g = PathGraph(6);
  SummaryGraph s = SummaryGraph::FromPartition(g, {0, 0, 0, 7, 7, 7});
  EXPECT_EQ(s.num_supernodes(), 2u);
  EXPECT_EQ(s.members(s.supernode_of(0)).size(), 3u);
  EXPECT_EQ(s.supernode_of(3), s.supernode_of(5));
  EXPECT_NE(s.supernode_of(0), s.supernode_of(3));
  EXPECT_EQ(s.num_superedges(), 0u);
}

TEST(SummaryGraphTest, RepeatedMergesCollapseToOne) {
  Graph g = PathGraph(6);
  SummaryGraph s = SummaryGraph::Identity(g);
  auto active = s.ActiveSupernodes();
  while (active.size() > 1) {
    s.MergeSupernodes(active[0], active[1]);
    active = s.ActiveSupernodes();
  }
  EXPECT_EQ(s.num_supernodes(), 1u);
  EXPECT_EQ(s.members(active[0]).size(), 6u);
  EXPECT_DOUBLE_EQ(s.SizeInBits(), 0.0);  // log2(1) = 0
}

}  // namespace
}  // namespace pegasus
