#include <gtest/gtest.h>

#include <limits>

#include "src/core/pegasus.h"
#include "src/core/personal_weights.h"
#include "src/util/bits.h"
#include "src/eval/error_eval.h"
#include "src/graph/datasets.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace pegasus {
namespace {

Graph TestGraph(uint64_t seed = 3) {
  return GenerateBarabasiAlbert(400, 3, seed);
}

TEST(PegasusTest, MeetsBudget) {
  Graph g = TestGraph();
  for (double ratio : {0.3, 0.5, 0.8}) {
    auto result = *SummarizeGraphToRatio(g, {0, 1, 2}, ratio);
    EXPECT_LE(result.final_size_bits, ratio * g.SizeInBits() + 1e-9)
        << "ratio " << ratio;
    EXPECT_LE(CompressionRatio(g, result.summary), ratio + 1e-9);
  }
}

TEST(PegasusTest, OutputIsValidPartition) {
  Graph g = TestGraph();
  auto result = *SummarizeGraphToRatio(g, {5}, 0.4);
  const SummaryGraph& s = result.summary;
  // Every node belongs to exactly one alive supernode that lists it.
  std::vector<uint32_t> seen(g.num_nodes(), 0);
  for (SupernodeId a : s.ActiveSupernodes()) {
    for (NodeId u : s.members(a)) {
      EXPECT_EQ(s.supernode_of(u), a);
      ++seen[u];
    }
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) EXPECT_EQ(seen[u], 1u);
}

TEST(PegasusTest, SuperedgesOnlyBetweenAliveSupernodes) {
  Graph g = TestGraph();
  auto result = *SummarizeGraphToRatio(g, {}, 0.5);
  const SummaryGraph& s = result.summary;
  for (SupernodeId a : s.ActiveSupernodes()) {
    for (const auto& [b, w] : s.superedges(a)) {
      EXPECT_TRUE(s.alive(b));
      EXPECT_GE(w, 1u);
    }
  }
}

TEST(PegasusTest, DeterministicForSeed) {
  Graph g = TestGraph();
  PegasusConfig config;
  config.seed = 77;
  auto r1 = *SummarizeGraphToRatio(g, {1, 2}, 0.5, config);
  auto r2 = *SummarizeGraphToRatio(g, {1, 2}, 0.5, config);
  EXPECT_EQ(r1.summary.num_supernodes(), r2.summary.num_supernodes());
  EXPECT_EQ(r1.summary.num_superedges(), r2.summary.num_superedges());
  EXPECT_DOUBLE_EQ(r1.final_size_bits, r2.final_size_bits);
}

TEST(PegasusTest, StopsEarlyWhenBudgetGenerous) {
  Graph g = TestGraph();
  auto result = *SummarizeGraphToRatio(g, {}, 0.99);
  EXPECT_LT(result.iterations_run, 20);
}

TEST(PegasusTest, RunsAllIterationsWhenBudgetTight) {
  // A 5% budget is below even the supernode-membership bits after 3
  // iterations, so PeGaSus uses every iteration and the sparsifier then
  // drops every superedge (the closest reachable size).
  Graph g = TestGraph();
  PegasusConfig config;
  config.max_iterations = 3;
  auto result = *SummarizeGraphToRatio(g, {}, 0.05, config);
  EXPECT_EQ(result.iterations_run, 3);
  EXPECT_EQ(result.summary.num_superedges(), 0u);
  // What remains is exactly the membership encoding |V| log2 |S|.
  EXPECT_DOUBLE_EQ(result.final_size_bits,
                   g.num_nodes() *
                       Log2Bits(result.summary.num_supernodes()));
}

TEST(PegasusTest, PersonalizationReducesTargetError) {
  // The core claim (Fig. 5): with the same budget, the summary built for
  // target set T has lower personalized error at T than the
  // non-personalized summary.
  Dataset ds = MakeDataset(DatasetId::kLastFmAsia, DatasetScale::kTiny, 11);
  const Graph& g = ds.graph;
  std::vector<NodeId> targets{0, 7, 13};

  PegasusConfig personalized;
  personalized.alpha = 1.5;
  personalized.seed = 5;
  auto p = *SummarizeGraphToRatio(g, targets, 0.4, personalized);

  PegasusConfig plain = personalized;
  plain.alpha = 1.0;
  auto np = *SummarizeGraphToRatio(g, {}, 0.4, plain);

  auto eval_weights = PersonalWeights::Compute(g, targets, 1.5);
  const double err_p = PersonalizedError(g, p.summary, eval_weights);
  const double err_np = PersonalizedError(g, np.summary, eval_weights);
  EXPECT_LT(err_p, err_np);
}

TEST(PegasusTest, AlphaOneMatchesUniformObjective) {
  // With alpha = 1 the personalized error equals the plain reconstruction
  // error for any summary.
  Graph g = TestGraph(9);
  auto result = *SummarizeGraphToRatio(g, {0, 1}, 0.5);
  auto uniform = PersonalWeights::Compute(g, {}, 1.0);
  EXPECT_NEAR(PersonalizedError(g, result.summary, uniform),
              ReconstructionError(g, result.summary), 1e-6);
}

TEST(PegasusTest, AbsoluteScoreAblationRuns) {
  Graph g = TestGraph(13);
  PegasusConfig config;
  config.merge_score = MergeScore::kAbsolute;
  auto result = *SummarizeGraphToRatio(g, {2}, 0.5, config);
  EXPECT_LE(result.final_size_bits, 0.5 * g.SizeInBits());
}

TEST(PegasusTest, TinyBudgetStillTerminates) {
  Graph g = ::pegasus::testing::TwoCliquesGraph(6);
  PegasusConfig config;
  config.max_iterations = 5;
  auto result = *SummarizeGraph(g, {0}, /*budget_bits=*/1.0, config);
  EXPECT_EQ(result.summary.num_superedges(), 0u);
}

TEST(PegasusTest, MergeStatsPopulated) {
  Graph g = TestGraph(15);
  auto result = *SummarizeGraphToRatio(g, {}, 0.3);
  EXPECT_GT(result.merge_stats.merges, 0u);
  EXPECT_GT(result.merge_stats.evaluations, result.merge_stats.merges);
  EXPECT_GT(result.elapsed_seconds, 0.0);
}

// The pipeline entry points return typed Status errors instead of
// asserting (or silently mis-running) on bad inputs (ISSUE 5).
TEST(PegasusTest, InvalidInputsRejectedTyped) {
  Graph g = TestGraph(12);
  const double nan = std::numeric_limits<double>::quiet_NaN();

  // Ratio outside (0, 1].
  for (double ratio : {0.0, -0.5, 1.5, nan}) {
    const auto r = SummarizeGraphToRatio(g, {}, ratio);
    ASSERT_FALSE(r.ok()) << ratio;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << ratio;
  }
  // Negative budget (zero stays valid: it is what any ratio yields on an
  // edgeless graph, and means "compress as far as possible").
  EXPECT_EQ(SummarizeGraph(g, {}, -1.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(SummarizeGraph(g, {}, 0.0).ok());
  // Bad config fields.
  PegasusConfig bad_alpha;
  bad_alpha.alpha = 0.5;
  EXPECT_EQ(SummarizeGraph(g, {}, 100.0, bad_alpha).status().code(),
            StatusCode::kInvalidArgument);
  PegasusConfig bad_beta;
  bad_beta.beta = 1.5;
  EXPECT_EQ(SummarizeGraph(g, {}, 100.0, bad_beta).status().code(),
            StatusCode::kInvalidArgument);
  PegasusConfig bad_iters;
  bad_iters.max_iterations = 0;
  EXPECT_EQ(SummarizeGraph(g, {}, 100.0, bad_iters).status().code(),
            StatusCode::kInvalidArgument);
  PegasusConfig bad_threads;
  bad_threads.num_threads = -2;
  EXPECT_EQ(SummarizeGraph(g, {}, 100.0, bad_threads).status().code(),
            StatusCode::kInvalidArgument);
  // Target out of range; the message names the offender.
  const auto bad_target = SummarizeGraph(g, {g.num_nodes()}, 100.0);
  ASSERT_FALSE(bad_target.ok());
  EXPECT_EQ(bad_target.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(bad_target.status().message().find("target 0"),
            std::string::npos)
      << bad_target.status().message();
  // Initial-summary node-count mismatch.
  Graph small = ::pegasus::testing::PathGraph(5);
  EXPECT_EQ(SummarizeGraphFrom(g, {}, 100.0,
                               SummaryGraph::Identity(small))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Boundary values that must stay accepted.
  PegasusConfig boundary;
  boundary.beta = 0.0;
  boundary.alpha = 1.0;
  EXPECT_TRUE(SummarizeGraphToRatio(g, {}, 1.0, boundary).ok());
}

}  // namespace
}  // namespace pegasus
