#include <gtest/gtest.h>

#include "src/graph/components.h"
#include "src/graph/diameter.h"
#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"

namespace pegasus {
namespace {

TEST(BarabasiAlbertTest, NodeAndEdgeCounts) {
  Graph g = GenerateBarabasiAlbert(1000, 3, 1);
  EXPECT_EQ(g.num_nodes(), 1000u);
  // Seed clique C(4,2)=6 edges + 996 * 3 attachments (deduplication can
  // only remove a handful).
  EXPECT_GE(g.num_edges(), 2900u);
  EXPECT_LE(g.num_edges(), 6 + 996u * 3);
}

TEST(BarabasiAlbertTest, Connected) {
  Graph g = GenerateBarabasiAlbert(500, 2, 2);
  EXPECT_EQ(ConnectedComponents(g).num_components, 1u);
}

TEST(BarabasiAlbertTest, DegreeSkew) {
  Graph g = GenerateBarabasiAlbert(2000, 2, 3);
  // Preferential attachment produces hubs far above the mean degree (~4).
  EXPECT_GE(g.MaxDegree(), 30u);
}

TEST(BarabasiAlbertTest, DeterministicForSeed) {
  Graph a = GenerateBarabasiAlbert(300, 2, 7);
  Graph b = GenerateBarabasiAlbert(300, 2, 7);
  EXPECT_EQ(a.CanonicalEdges(), b.CanonicalEdges());
}

TEST(WattsStrogatzTest, LatticeWithoutRewiring) {
  Graph g = GenerateWattsStrogatz(100, 4, 0.0, 1);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_edges(), 200u);  // n * k / 2
  for (NodeId u = 0; u < 100; ++u) EXPECT_EQ(g.degree(u), 4u);
}

TEST(WattsStrogatzTest, RewiringShrinksDiameter) {
  Graph lattice = GenerateWattsStrogatz(1000, 10, 0.0, 2);
  Graph small_world = GenerateWattsStrogatz(1000, 10, 0.1, 2);
  const double d_lattice = EffectiveDiameter(lattice, 0.9, 64, 3);
  const double d_small = EffectiveDiameter(small_world, 0.9, 64, 3);
  EXPECT_LT(d_small, d_lattice * 0.5);
}

TEST(ErdosRenyiTest, ExactEdgeCount) {
  Graph g = GenerateErdosRenyi(200, 500, 4);
  EXPECT_EQ(g.num_nodes(), 200u);
  EXPECT_EQ(g.num_edges(), 500u);
}

TEST(ErdosRenyiTest, CapsAtCompleteGraph) {
  Graph g = GenerateErdosRenyi(5, 100, 5);
  EXPECT_EQ(g.num_edges(), 10u);
}

TEST(PlantedPartitionTest, CommunityStructure) {
  Graph g = GeneratePlantedPartition(1000, 10, 8.0, 0.5, 6);
  // Count within-block vs cross-block edges; blocks are contiguous ranges
  // of 100 nodes.
  EdgeId within = 0, cross = 0;
  for (const Edge& e : g.CanonicalEdges()) {
    if (e.u / 100 == e.v / 100) {
      ++within;
    } else {
      ++cross;
    }
  }
  EXPECT_GT(within, cross * 3);
}

TEST(GridTest, StructureAndSize) {
  Graph g = GenerateGrid(10, 10, 0.0, 7);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_edges(), 180u);  // 2 * 10 * 9
  EXPECT_EQ(ConnectedComponents(g).num_components, 1u);
}

TEST(GridTest, ShortcutsAddEdges) {
  Graph plain = GenerateGrid(20, 20, 0.0, 8);
  Graph with_shortcuts = GenerateGrid(20, 20, 0.5, 8);
  EXPECT_GT(with_shortcuts.num_edges(), plain.num_edges());
}

TEST(UnionGraphsTest, UnionsEdgeSets) {
  Graph a = BuildGraph(4, {{0, 1}, {1, 2}});
  Graph b = BuildGraph(4, {{1, 2}, {2, 3}});
  Graph u = UnionGraphs(a, b);
  EXPECT_EQ(u.num_edges(), 3u);
  EXPECT_TRUE(u.HasEdge(0, 1));
  EXPECT_TRUE(u.HasEdge(2, 3));
}

}  // namespace
}  // namespace pegasus
