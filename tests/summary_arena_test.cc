// SummaryArena tests: the mmap serving path answers every query family
// byte-identically to a freshly built view (the cross-stdlib goldens pin
// both), the heap-decode fallback for compact files gives the same
// answers, the arrays are bit-for-bit the built view's arrays, and the
// structural / checksum gates reject damaged files.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/core/binary_summary_io.h"
#include "src/core/pegasus.h"
#include "src/core/psb_format.h"
#include "src/core/summary_arena.h"
#include "src/query/query_engine.h"
#include "src/query/summary_view.h"
#include "tests/test_util.h"

namespace pegasus {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Writes the golden summary as a PSB1 file and returns the built view it
// was written from, for side-by-side comparison with the arena.
std::unique_ptr<SummaryView> WriteGoldenPsb(const std::string& path,
                                            bool compact) {
  const Graph g = ::pegasus::testing::QueryGoldenGraph();
  const SummaryGraph summary = ::pegasus::testing::QueryGoldenSummary(g);
  auto view = std::make_unique<SummaryView>(summary);
  PsbWriteOptions opts;
  opts.compact = compact;
  EXPECT_TRUE(SaveSummaryBinary(view->layout(), path, opts));
  return view;
}

void ExpectGoldenAnswers(const SummaryView& view) {
  for (const auto& c : ::pegasus::testing::QueryGoldenCases()) {
    auto canon = CanonicalizeRequest(c.request, view.num_nodes());
    ASSERT_TRUE(canon.ok()) << c.name;
    const uint64_t got =
        ::pegasus::testing::HashQueryResult(AnswerQuery(view, *canon));
    EXPECT_EQ(got, c.hash) << c.name;
  }
}

TEST(SummaryArenaTest, MappedViewMatchesCrossStdlibGoldens) {
  const std::string path = TempPath("golden.psb");
  WriteGoldenPsb(path, /*compact=*/false);
  auto arena = SummaryArena::Map(path);
  ASSERT_TRUE(arena.has_value()) << arena.status().ToString();
  if constexpr (std::endian::native == std::endian::little) {
    EXPECT_TRUE((*arena)->mapped());
  }
  const SummaryView view(*arena);
  EXPECT_NE(view.arena(), nullptr);
  ExpectGoldenAnswers(view);
  std::remove(path.c_str());
}

TEST(SummaryArenaTest, CompactFileDecodesToSameAnswers) {
  // Varint/delta sections cannot be served in place; Map falls back to
  // the heap decoder and the answers are still byte-identical.
  const std::string path = TempPath("golden_compact.psb");
  WriteGoldenPsb(path, /*compact=*/true);
  auto arena = SummaryArena::Map(path);
  ASSERT_TRUE(arena.has_value()) << arena.status().ToString();
  EXPECT_FALSE((*arena)->mapped());
  const SummaryView view(*arena);
  ExpectGoldenAnswers(view);
  std::remove(path.c_str());
}

TEST(SummaryArenaTest, ArenaArraysAreBitIdenticalToBuiltView) {
  const std::string path = TempPath("identity.psb");
  auto built = WriteGoldenPsb(path, /*compact=*/false);
  auto arena = SummaryArena::Map(path);
  ASSERT_TRUE(arena.has_value()) << arena.status().ToString();
  const SummaryLayout& a = built->layout();
  const SummaryLayout& b = (*arena)->layout();
  ASSERT_EQ(a.num_nodes, b.num_nodes);
  ASSERT_EQ(a.num_supernodes, b.num_supernodes);
  ASSERT_EQ(a.num_superedges, b.num_superedges);
  ASSERT_EQ(a.num_edge_slots, b.num_edge_slots);
  const uint64_t v = a.num_nodes, s = a.num_supernodes, e = a.num_edge_slots;
  EXPECT_EQ(std::memcmp(a.node_to_super, b.node_to_super, v * 4), 0);
  EXPECT_EQ(std::memcmp(a.member_begin, b.member_begin, (s + 1) * 8), 0);
  EXPECT_EQ(std::memcmp(a.members, b.members, v * 4), 0);
  EXPECT_EQ(std::memcmp(a.edge_begin, b.edge_begin, (s + 1) * 8), 0);
  EXPECT_EQ(std::memcmp(a.edge_dst, b.edge_dst, e * 4), 0);
  EXPECT_EQ(std::memcmp(a.edge_weight, b.edge_weight, e * 4), 0);
  EXPECT_EQ(std::memcmp(a.edge_density_w, b.edge_density_w, e * 8), 0);
  EXPECT_EQ(std::memcmp(a.edge_density_uw, b.edge_density_uw, e * 8), 0);
  EXPECT_EQ(std::memcmp(a.member_count, b.member_count, s * 8), 0);
  EXPECT_EQ(std::memcmp(a.member_deg_w, b.member_deg_w, s * 8), 0);
  EXPECT_EQ(std::memcmp(a.member_deg_uw, b.member_deg_uw, s * 8), 0);
  EXPECT_EQ(std::memcmp(a.self_density_w, b.self_density_w, s * 8), 0);
  EXPECT_EQ(std::memcmp(a.self_density_uw, b.self_density_uw, s * 8), 0);
  std::remove(path.c_str());
}

TEST(SummaryArenaTest, ViewKeepsArenaAlive) {
  const std::string path = TempPath("alive.psb");
  WriteGoldenPsb(path, /*compact=*/false);
  std::unique_ptr<SummaryView> view;
  {
    auto arena = SummaryArena::Map(path);
    ASSERT_TRUE(arena.has_value());
    view = std::make_unique<SummaryView>(*std::move(arena));
  }
  // The local shared_ptr is gone; the view's reference must keep the
  // mapping valid (this would crash under ASAN/MSAN otherwise).
  ExpectGoldenAnswers(*view);
  std::remove(path.c_str());
}

TEST(SummaryArenaTest, ChecksumOptionCatchesFlipsTheDefaultSkips) {
  // Flip one byte inside edge_density_w: structurally invisible (the
  // bounds pass only reads the integer arrays), so the instant-restart
  // default accepts it, while verify_checksums names the section.
  const std::string path = TempPath("flip.psb");
  WriteGoldenPsb(path, /*compact=*/false);
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.has_value());
  auto header = psb::ParsePsbHeader(bytes->data(), bytes->size(),
                                    bytes->size(), path);
  ASSERT_TRUE(header.has_value());
  const auto& density = header->sections[6];  // id 7, edge_density_w
  ASSERT_EQ(density.id, 7u);
  (*bytes)[density.offset + 1] ^= 0x01;
  WriteBytes(path, *bytes);

  auto lax = SummaryArena::Map(path);
  EXPECT_TRUE(lax.has_value()) << lax.status().ToString();

  SummaryArenaOptions opts;
  opts.verify_checksums = true;
  auto strict = SummaryArena::Map(path, opts);
  ASSERT_FALSE(strict.has_value());
  EXPECT_EQ(strict.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(strict.status().ToString().find("edge_density_w"),
            std::string::npos)
      << strict.status().ToString();
  std::remove(path.c_str());
}

TEST(SummaryArenaTest, StructuralValidationRejectsBadArrays) {
  // An out-of-range supernode label slips past the (skipped) checksum
  // but must be stopped by the structural pass before it can crash a
  // query kernel.
  const std::string path = TempPath("bad_label.psb");
  WriteGoldenPsb(path, /*compact=*/false);
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.has_value());
  auto header = psb::ParsePsbHeader(bytes->data(), bytes->size(),
                                    bytes->size(), path);
  ASSERT_TRUE(header.has_value());
  const auto& labels = header->sections[0];  // id 1, node_to_super
  ASSERT_EQ(labels.id, 1u);
  for (size_t i = 0; i < 4; ++i) (*bytes)[labels.offset + i] = 0xff;
  WriteBytes(path, *bytes);

  auto arena = SummaryArena::Map(path);
  ASSERT_FALSE(arena.has_value());
  EXPECT_EQ(arena.status().code(), StatusCode::kDataLoss);

  // ...unless the caller explicitly disabled the structural pass too.
  SummaryArenaOptions off;
  off.validate_structure = false;
  EXPECT_TRUE(SummaryArena::Map(path, off).has_value());
  std::remove(path.c_str());
}

TEST(SummaryArenaTest, MapRejectsMissingAndTruncatedFiles) {
  EXPECT_EQ(SummaryArena::Map("/no/such/file.psb").status().code(),
            StatusCode::kNotFound);

  const std::string path = TempPath("trunc.psb");
  WriteGoldenPsb(path, /*compact=*/false);
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.has_value());
  bytes->resize(bytes->size() / 2);
  WriteBytes(path, *bytes);
  const auto arena = SummaryArena::Map(path);
  ASSERT_FALSE(arena.has_value());
  EXPECT_EQ(arena.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(SummaryArenaTest, HeaderCountsMatchTheView) {
  const std::string path = TempPath("counts.psb");
  auto built = WriteGoldenPsb(path, /*compact=*/false);
  auto arena = SummaryArena::Map(path);
  ASSERT_TRUE(arena.has_value());
  const psb::PsbHeader& h = (*arena)->header();
  EXPECT_EQ(h.num_nodes, built->layout().num_nodes);
  EXPECT_EQ(h.num_supernodes, built->layout().num_supernodes);
  EXPECT_EQ(h.num_superedges, built->layout().num_superedges);
  EXPECT_EQ(h.num_edge_slots, built->layout().num_edge_slots);
  EXPECT_EQ((*arena)->path(), path);

  const SummaryView view(*arena);
  EXPECT_EQ(view.num_nodes(), built->num_nodes());
  EXPECT_EQ(view.num_supernodes(), built->num_supernodes());
  EXPECT_EQ(view.num_superedges(), built->num_superedges());
  EXPECT_EQ(view.num_edge_slots(), built->num_edge_slots());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pegasus
