// Property tests on the cost model's algebraic invariants, checked over
// random graphs and random merge sequences.

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/cost_model.h"
#include "src/core/merge_engine.h"
#include "src/core/personal_weights.h"
#include "src/graph/generators.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace pegasus {
namespace {

struct RandomizedFixture {
  RandomizedFixture(uint64_t seed, double alpha,
                    std::vector<NodeId> targets)
      : graph(GenerateBarabasiAlbertTails(120, 3, 0.5, seed)),
        summary(SummaryGraph::Identity(graph)),
        weights(PersonalWeights::Compute(graph, targets, alpha)),
        cost(graph, weights, summary),
        engine(graph, summary, cost, MergeScore::kRelative),
        rng(seed ^ 0xabcdULL) {}

  // Performs `count` random merges through the engine.
  void RandomMerges(int count) {
    for (int i = 0; i < count; ++i) {
      auto active = summary.ActiveSupernodes();
      if (active.size() < 2) break;
      size_t x = static_cast<size_t>(rng.Uniform(active.size()));
      size_t y = static_cast<size_t>(rng.Uniform(active.size() - 1));
      if (y >= x) ++y;
      engine.ApplyMerge(active[x], active[y]);
    }
  }

  Graph graph;
  SummaryGraph summary;
  PersonalWeights weights;
  CostModel cost;
  MergeEngine engine;
  Rng rng;
};

class CostInvariantsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CostInvariantsTest, EvaluateMergeIsSymmetric) {
  RandomizedFixture f(GetParam(), 1.5, {0, 1});
  f.RandomMerges(30);
  auto active = f.summary.ActiveSupernodes();
  for (int i = 0; i < 15; ++i) {
    size_t x = static_cast<size_t>(f.rng.Uniform(active.size()));
    size_t y = static_cast<size_t>(f.rng.Uniform(active.size() - 1));
    if (y >= x) ++y;
    MergeEval ab = f.cost.EvaluateMerge(active[x], active[y]);
    MergeEval ba = f.cost.EvaluateMerge(active[y], active[x]);
    EXPECT_NEAR(ab.absolute, ba.absolute, 1e-7);
    EXPECT_NEAR(ab.relative, ba.relative, 1e-7);
  }
}

TEST_P(CostInvariantsTest, PiSumsMatchMembers) {
  RandomizedFixture f(GetParam(), 1.25, {3});
  f.RandomMerges(40);
  for (SupernodeId a : f.summary.ActiveSupernodes()) {
    double pi = 0.0, pi2 = 0.0;
    for (NodeId u : f.summary.members(a)) {
      pi += f.weights.pi(u);
      pi2 += f.weights.pi(u) * f.weights.pi(u);
    }
    EXPECT_NEAR(f.cost.Pi(a), pi, 1e-9);
    EXPECT_NEAR(f.cost.Pi2(a), pi2, 1e-9);
  }
}

TEST_P(CostInvariantsTest, IncidentEdgeCountsSumToDegrees) {
  RandomizedFixture f(GetParam(), 1.25, {});
  f.RandomMerges(25);
  std::vector<IncidentPair> incident;
  uint64_t total_cross = 0, total_self = 0;
  for (SupernodeId a : f.summary.ActiveSupernodes()) {
    f.cost.CollectIncident(a, incident);
    for (const IncidentPair& p : incident) {
      if (p.neighbor == a) {
        total_self += p.edge_count;
      } else {
        total_cross += p.edge_count;
      }
    }
  }
  // Every cross edge is seen from both sides; self edges once per block.
  EXPECT_EQ(total_cross / 2 + total_self, f.graph.num_edges());
}

TEST_P(CostInvariantsTest, SupernodeCostsNonNegative) {
  RandomizedFixture f(GetParam(), 1.75, {0});
  f.RandomMerges(35);
  for (SupernodeId a : f.summary.ActiveSupernodes()) {
    EXPECT_GE(f.cost.SupernodeCost(a), -1e-9);
  }
}

TEST_P(CostInvariantsTest, PotentialDominatesEdgeWeight) {
  RandomizedFixture f(GetParam(), 1.5, {0, 5});
  f.RandomMerges(30);
  std::vector<IncidentPair> incident;
  for (SupernodeId a : f.summary.ActiveSupernodes()) {
    f.cost.CollectIncident(a, incident);
    for (const IncidentPair& p : incident) {
      // The weight of real edges in a block can never exceed the block's
      // total pair weight.
      EXPECT_LE(p.edge_weight,
                f.cost.PairPotential(a, p.neighbor) + 1e-6)
          << "block " << a << "," << p.neighbor;
    }
  }
}

TEST_P(CostInvariantsTest, ReselectionMatchesBenefitRule) {
  // After ReselectSuperedges, the stored superedges of a supernode are
  // exactly the incident pairs the benefit rule approves (Alg. 2 line 9).
  RandomizedFixture f(GetParam(), 1.25, {2});
  f.RandomMerges(30);
  std::vector<IncidentPair> incident;
  for (SupernodeId a : f.summary.ActiveSupernodes()) {
    f.engine.ReselectSuperedges(a);
    f.cost.CollectIncident(a, incident);
    size_t beneficial_count = 0;
    for (const IncidentPair& p : incident) {
      const bool beneficial = f.cost.SuperedgeBeneficial(
          f.cost.PairPotential(a, p.neighbor), p.edge_weight,
          f.summary.num_supernodes());
      EXPECT_EQ(f.summary.HasSuperedge(a, p.neighbor), beneficial)
          << "pair " << a << "," << p.neighbor;
      beneficial_count += beneficial;
    }
    // No superedges outside the incident set.
    EXPECT_EQ(f.summary.superedges(a).size(), beneficial_count);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostInvariantsTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace pegasus
