#include <gtest/gtest.h>

#include "src/baselines/s2l.h"
#include "src/eval/error_eval.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace pegasus {
namespace {

TEST(S2lTest, ProducesRequestedClusterCountAtMost) {
  Graph g = GenerateBarabasiAlbert(150, 2, 15);
  auto result = *S2lSummarize(g, 30);
  ASSERT_FALSE(result.timed_out);
  EXPECT_LE(result.summary.num_supernodes(), 30u);
  EXPECT_GE(result.summary.num_supernodes(), 2u);
}

TEST(S2lTest, ValidPartition) {
  Graph g = GenerateBarabasiAlbert(120, 2, 16);
  auto result = *S2lSummarize(g, 20);
  ASSERT_FALSE(result.timed_out);
  std::vector<uint32_t> seen(g.num_nodes(), 0);
  for (SupernodeId a : result.summary.ActiveSupernodes()) {
    for (NodeId u : result.summary.members(a)) ++seen[u];
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) EXPECT_EQ(seen[u], 1u);
}

TEST(S2lTest, ClustersIdenticalRowsTogether) {
  // In Fig. 3, rows of 0 and 1 are identical and rows of 2 and 3 are
  // identical; with k = 3, k-median must co-cluster at least one twin pair
  // (zero distance to its twin seed).
  Graph g = ::pegasus::testing::Fig3Graph();
  auto result = *S2lSummarize(g, 3, {.seed = 4});
  ASSERT_FALSE(result.timed_out);
  const SummaryGraph& s = result.summary;
  const bool twins01 = s.supernode_of(0) == s.supernode_of(1);
  const bool twins23 = s.supernode_of(2) == s.supernode_of(3);
  EXPECT_TRUE(twins01 || twins23);
}

TEST(S2lTest, DenseCoverage) {
  Graph g = ::pegasus::testing::TwoCliquesGraph(4);
  auto result = *S2lSummarize(g, 3);
  ASSERT_FALSE(result.timed_out);
  const SummaryGraph& s = result.summary;
  for (const Edge& e : g.CanonicalEdges()) {
    EXPECT_TRUE(s.HasSuperedge(s.supernode_of(e.u), s.supernode_of(e.v)));
  }
}

TEST(S2lTest, OversizedProblemReportsTimeout) {
  // n * k above the guard must report o.o.t./o.o.m. like the paper.
  Graph g = GenerateBarabasiAlbert(70000, 2, 17);
  auto result = *S2lSummarize(g, 10000);
  EXPECT_TRUE(result.timed_out);
}

TEST(S2lTest, InvalidInputsRejectedTyped) {
  Graph g = GenerateBarabasiAlbert(30, 2, 17);
  EXPECT_EQ(S2lSummarize(g, 0).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pegasus
