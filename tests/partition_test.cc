#include <gtest/gtest.h>

#include "src/partition/partition.h"
#include "src/partition/random_partition.h"
#include "tests/test_util.h"

namespace pegasus {
namespace {

using ::pegasus::testing::PathGraph;
using ::pegasus::testing::TwoCliquesGraph;

TEST(PartitionTest, PartsAndSizes) {
  Partition p;
  p.num_parts = 2;
  p.part_of = {0, 1, 0, 1, 0};
  auto parts = p.Parts();
  EXPECT_EQ(parts[0], (std::vector<NodeId>{0, 2, 4}));
  EXPECT_EQ(parts[1], (std::vector<NodeId>{1, 3}));
  EXPECT_EQ(p.Sizes(), (std::vector<NodeId>{3, 2}));
}

TEST(PartitionTest, Validity) {
  Partition p;
  p.num_parts = 2;
  p.part_of = {0, 1, 0};
  EXPECT_TRUE(p.Valid(3));
  EXPECT_FALSE(p.Valid(4));  // wrong size
  p.part_of = {0, 0, 0};
  EXPECT_FALSE(p.Valid(3));  // part 1 empty
  p.part_of = {0, 2, 1};
  EXPECT_FALSE(p.Valid(3));  // out-of-range id
}

TEST(PartitionTest, CutEdges) {
  Graph g = PathGraph(4);
  Partition p;
  p.num_parts = 2;
  p.part_of = {0, 0, 1, 1};
  EXPECT_EQ(CutEdges(g, p), 1u);
  p.part_of = {0, 1, 0, 1};
  EXPECT_EQ(CutEdges(g, p), 3u);
}

TEST(PartitionTest, ModularityFavorsCommunityAlignment) {
  Graph g = TwoCliquesGraph(5);
  Partition aligned;
  aligned.num_parts = 2;
  aligned.part_of.assign(10, 0);
  for (NodeId u = 5; u < 10; ++u) aligned.part_of[u] = 1;
  Partition random;
  random.num_parts = 2;
  random.part_of = {0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_GT(Modularity(g, aligned), Modularity(g, random));
}

TEST(PartitionTest, BalanceFactor) {
  Partition p;
  p.num_parts = 2;
  p.part_of = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(BalanceFactor(p, 4), 1.0);
  p.part_of = {0, 0, 0, 1};
  EXPECT_DOUBLE_EQ(BalanceFactor(p, 4), 1.5);
}

TEST(PackIntoPartsTest, BalancesCommunities) {
  // Four communities of sizes 4, 3, 2, 1 into 2 parts: best split is
  // {4,1} vs {3,2} or similar; max load must be 5.
  std::vector<uint32_t> labels;
  for (int i = 0; i < 4; ++i) labels.push_back(0);
  for (int i = 0; i < 3; ++i) labels.push_back(1);
  for (int i = 0; i < 2; ++i) labels.push_back(2);
  labels.push_back(3);
  Partition p = PackIntoParts(labels, 2);
  EXPECT_TRUE(p.Valid(10));
  auto sizes = p.Sizes();
  EXPECT_EQ(std::max(sizes[0], sizes[1]), 5u);
}

TEST(PackIntoPartsTest, KeepsCommunitiesIntact) {
  std::vector<uint32_t> labels{0, 0, 0, 1, 1, 1};
  Partition p = PackIntoParts(labels, 2);
  EXPECT_EQ(p.part_of[0], p.part_of[1]);
  EXPECT_EQ(p.part_of[0], p.part_of[2]);
  EXPECT_EQ(p.part_of[3], p.part_of[4]);
}

TEST(PackIntoPartsTest, FillsEmptyParts) {
  // One giant community into 3 parts: two parts would be empty without the
  // repair step.
  std::vector<uint32_t> labels(9, 0);
  Partition p = PackIntoParts(labels, 3);
  EXPECT_TRUE(p.Valid(9));
}

TEST(RandomPartitionTest, BalancedAndValid) {
  Partition p = RandomPartition(100, 8, 1);
  EXPECT_TRUE(p.Valid(100));
  auto sizes = p.Sizes();
  for (NodeId s : sizes) {
    EXPECT_GE(s, 12u);
    EXPECT_LE(s, 13u);
  }
}

TEST(RandomPartitionTest, DeterministicForSeed) {
  Partition a = RandomPartition(50, 4, 9);
  Partition b = RandomPartition(50, 4, 9);
  EXPECT_EQ(a.part_of, b.part_of);
}

}  // namespace
}  // namespace pegasus
