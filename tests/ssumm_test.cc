#include <gtest/gtest.h>

#include "src/baselines/ssumm.h"
#include "src/eval/error_eval.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace pegasus {
namespace {

TEST(SsummTest, MeetsBudget) {
  Graph g = GenerateBarabasiAlbert(300, 3, 4);
  for (double ratio : {0.3, 0.6}) {
    auto result = *SsummSummarizeToRatio(g, ratio);
    EXPECT_LE(result.final_size_bits, ratio * g.SizeInBits() + 1e-9);
  }
}

TEST(SsummTest, ProducesValidPartition) {
  Graph g = GenerateBarabasiAlbert(200, 2, 5);
  auto result = *SsummSummarizeToRatio(g, 0.5);
  std::vector<uint32_t> seen(g.num_nodes(), 0);
  for (SupernodeId a : result.summary.ActiveSupernodes()) {
    for (NodeId u : result.summary.members(a)) ++seen[u];
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) EXPECT_EQ(seen[u], 1u);
}

TEST(SsummTest, ErrorGrowsAsBudgetShrinks) {
  Graph g = GenerateBarabasiAlbert(300, 3, 6);
  SsummConfig config;
  config.seed = 3;
  auto tight = *SsummSummarizeToRatio(g, 0.2, config);
  auto loose = *SsummSummarizeToRatio(g, 0.8, config);
  EXPECT_GE(ReconstructionError(g, tight.summary),
            ReconstructionError(g, loose.summary));
}

TEST(SsummTest, DeterministicForSeed) {
  Graph g = GenerateBarabasiAlbert(150, 2, 7);
  SsummConfig config;
  config.seed = 21;
  auto a = *SsummSummarizeToRatio(g, 0.5, config);
  auto b = *SsummSummarizeToRatio(g, 0.5, config);
  EXPECT_EQ(a.summary.num_supernodes(), b.summary.num_supernodes());
  EXPECT_DOUBLE_EQ(a.final_size_bits, b.final_size_bits);
}

TEST(SsummTest, CollapsesTwinsExactly) {
  Graph g = ::pegasus::testing::Fig3Graph();
  // Generous budget: SSumM should find the lossless twin merges.
  auto result = *SsummSummarize(g, g.SizeInBits());
  EXPECT_LE(ReconstructionError(g, result.summary), 4.0);
}

TEST(SsummTest, InvalidInputsRejectedTyped) {
  Graph g = ::pegasus::testing::Fig3Graph();
  EXPECT_EQ(SsummSummarize(g, -1.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SsummSummarizeToRatio(g, 1.5).status().code(),
            StatusCode::kInvalidArgument);
  SsummConfig config;
  config.max_iterations = 0;
  EXPECT_EQ(SsummSummarize(g, 100.0, config).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pegasus
