// Shard build pipeline tests: the partitioner registry, the on-disk
// build (PSB per shard + validated manifest + matching checksums), byte
// determinism of a rebuild, the 1-shard trivial layout, option
// validation, and the delegation contract — SummaryCluster::Build and
// shard::BuildShardSummaries are the same code path, so their summaries
// agree machine by machine.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/binary_summary_io.h"
#include "src/distributed/cluster.h"
#include "src/graph/generators.h"
#include "src/partition/random_partition.h"
#include "src/shard/manifest.h"
#include "src/shard/shard_build.h"
#include "src/util/status.h"
#include "tests/test_util.h"

namespace pegasus::shard {
namespace {

std::string TempDirFor(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {(std::istreambuf_iterator<char>(in)),
          std::istreambuf_iterator<char>()};
}

Graph TestGraph() { return GenerateBarabasiAlbert(120, 3, 31); }

ShardBuildOptions TestOptions(uint32_t shards) {
  ShardBuildOptions options;
  options.num_shards = shards;
  options.partitioner = PartitionerKind::kRandom;
  options.ratio = 0.5;
  options.config.seed = 7;
  return options;
}

TEST(ShardBuildTest, PartitionerRegistryRoundTrips) {
  for (PartitionerKind kind :
       {PartitionerKind::kLouvain, PartitionerKind::kBlp,
        PartitionerKind::kMultilevel, PartitionerKind::kShpI,
        PartitionerKind::kShpII, PartitionerKind::kShpKL,
        PartitionerKind::kRandom}) {
    auto parsed = ParsePartitionerKind(PartitionerName(kind));
    ASSERT_TRUE(parsed.has_value()) << PartitionerName(kind);
    EXPECT_EQ(*parsed, kind);
    EXPECT_NE(PartitionerList().find(PartitionerName(kind)),
              std::string::npos);
  }
  EXPECT_FALSE(ParsePartitionerKind("metis").has_value());
}

TEST(ShardBuildTest, RunPartitionerProducesValidPartitions) {
  const Graph graph = TestGraph();
  for (PartitionerKind kind :
       {PartitionerKind::kLouvain, PartitionerKind::kBlp,
        PartitionerKind::kMultilevel, PartitionerKind::kShpI,
        PartitionerKind::kShpII, PartitionerKind::kShpKL,
        PartitionerKind::kRandom}) {
    const Partition p = RunPartitioner(graph, 4, kind, 11);
    EXPECT_TRUE(p.Valid(graph.num_nodes())) << PartitionerName(kind);
    EXPECT_EQ(p.num_parts, 4u) << PartitionerName(kind);
  }
}

TEST(ShardBuildTest, BuildWritesLoadableShardsAndManifest) {
  const Graph graph = TestGraph();
  const std::string dir = TempDirFor("shard_build_out");
  auto result = ShardBuild(graph, dir, TestOptions(3));
  ASSERT_TRUE(result) << result.status().ToString();

  EXPECT_EQ(result->manifest.num_shards, 3u);
  EXPECT_EQ(result->manifest.num_nodes, graph.num_nodes());
  EXPECT_EQ(result->manifest.partitioner, "random");
  EXPECT_TRUE(result->manifest.Validate());
  EXPECT_EQ(result->partition.part_of, result->manifest.node_shard);
  EXPECT_GE(result->build_seconds, 0.0);

  // The manifest on disk loads back identical and every shard PSB both
  // passes its recorded checksum and decodes to a summary of the graph.
  auto loaded = LoadManifest(result->manifest_path);
  ASSERT_TRUE(loaded) << loaded.status().ToString();
  EXPECT_EQ(loaded->node_shard, result->manifest.node_shard);
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(VerifyShardChecksum(*loaded, dir, i)) << i;
    auto summary = LoadSummaryBinary(ShardPsbPath(*loaded, dir, i));
    ASSERT_TRUE(summary) << summary.status().ToString();
    EXPECT_EQ(summary->num_nodes(), graph.num_nodes()) << i;
    EXPECT_EQ(summary->num_supernodes(), result->shard_supernodes[i]) << i;
  }
}

TEST(ShardBuildTest, RebuildIsByteIdentical) {
  const Graph graph = TestGraph();
  const std::string dir_a = TempDirFor("shard_det_a");
  const std::string dir_b = TempDirFor("shard_det_b");
  auto a = ShardBuild(graph, dir_a, TestOptions(2));
  auto b = ShardBuild(graph, dir_b, TestOptions(2));
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  // Manifest text and every shard image are pure functions of
  // (graph, options) — relative paths make the directories move as units.
  EXPECT_EQ(FileBytes(a->manifest_path), FileBytes(b->manifest_path));
  for (uint32_t i = 0; i < 2; ++i) {
    EXPECT_EQ(FileBytes(ShardPsbPath(a->manifest, dir_a, i)),
              FileBytes(ShardPsbPath(b->manifest, dir_b, i)))
        << i;
  }
}

TEST(ShardBuildTest, SingleShardUsesTrivialLayout) {
  const Graph graph = TestGraph();
  // Partitioner choice must not reach a 1-shard build: the layouts (and
  // the bytes) agree across partitioners.
  ShardBuildOptions louvain = TestOptions(1);
  louvain.partitioner = PartitionerKind::kLouvain;
  ShardBuildOptions random = TestOptions(1);
  random.partitioner = PartitionerKind::kRandom;
  const std::string dir_a = TempDirFor("shard_single_a");
  const std::string dir_b = TempDirFor("shard_single_b");
  auto a = ShardBuild(graph, dir_a, louvain);
  auto b = ShardBuild(graph, dir_b, random);
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  EXPECT_EQ(a->manifest.num_shards, 1u);
  for (uint32_t part : a->manifest.node_shard) EXPECT_EQ(part, 0u);
  EXPECT_EQ(FileBytes(ShardPsbPath(a->manifest, dir_a, 0)),
            FileBytes(ShardPsbPath(b->manifest, dir_b, 0)));
}

TEST(ShardBuildTest, RejectsBadOptions) {
  const Graph graph = TestGraph();
  const std::string dir = TempDirFor("shard_bad_opts");
  EXPECT_EQ(ShardBuild(graph, dir, TestOptions(0)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      ShardBuild(graph, dir, TestOptions(graph.num_nodes() + 1)).status()
          .code(),
      StatusCode::kInvalidArgument);
  ShardBuildOptions bad_ratio = TestOptions(2);
  bad_ratio.ratio = 0.0;
  EXPECT_EQ(ShardBuild(graph, dir, bad_ratio).status().code(),
            StatusCode::kInvalidArgument);
  bad_ratio.ratio = 1.5;
  EXPECT_EQ(ShardBuild(graph, dir, bad_ratio).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardBuildTest, BuildShardSummariesMatchesSummaryCluster) {
  const Graph graph = TestGraph();
  const Partition partition = RandomPartition(graph.num_nodes(), 3, 5);
  PegasusConfig config;
  config.seed = 13;
  const double budget = 0.5 * graph.SizeInBits();

  auto summaries = BuildShardSummaries(graph, partition, budget, config);
  ASSERT_TRUE(summaries) << summaries.status().ToString();
  auto cluster = SummaryCluster::Build(graph, partition, budget, config);
  ASSERT_TRUE(cluster) << cluster.status().ToString();

  ASSERT_EQ(summaries->size(), cluster->num_machines());
  for (uint32_t i = 0; i < cluster->num_machines(); ++i) {
    EXPECT_EQ((*summaries)[i].num_supernodes(),
              cluster->summary(i).num_supernodes())
        << i;
    EXPECT_EQ((*summaries)[i].SizeInBits(), cluster->summary(i).SizeInBits())
        << i;
  }
}

TEST(ShardBuildTest, MachineErrorsNameTheMachine) {
  const Graph graph = TestGraph();
  const Partition partition = RandomPartition(graph.num_nodes(), 2, 5);
  // A negative budget is rejected by the summarizer; the error must name
  // machine 0 (the first to build), same contract distributed_test pins.
  auto summaries = BuildShardSummaries(graph, partition, -1.0, {});
  ASSERT_FALSE(summaries);
  EXPECT_NE(summaries.status().message().find("machine 0"),
            std::string::npos);
}

}  // namespace
}  // namespace pegasus::shard
