#include <gtest/gtest.h>

#include "src/core/threshold.h"

namespace pegasus {
namespace {

TEST(ThresholdTest, InitialThetaIsHalf) {
  ThresholdPolicy adaptive(ThresholdRule::kAdaptive, 0.1, 20);
  EXPECT_DOUBLE_EQ(adaptive.theta(), 0.5);
  ThresholdPolicy harmonic(ThresholdRule::kHarmonic, 0.1, 20);
  EXPECT_DOUBLE_EQ(harmonic.theta(), 0.5);
}

TEST(ThresholdTest, HarmonicSchedule) {
  ThresholdPolicy p(ThresholdRule::kHarmonic, 0.1, 5);
  p.EndIteration(2);
  EXPECT_DOUBLE_EQ(p.theta(), 1.0 / 3.0);
  p.EndIteration(3);
  EXPECT_DOUBLE_EQ(p.theta(), 0.25);
  p.EndIteration(5);  // t >= tmax: 0
  EXPECT_DOUBLE_EQ(p.theta(), 0.0);
}

TEST(ThresholdTest, AdaptivePicksKthLargest) {
  ThresholdPolicy p(ThresholdRule::kAdaptive, 0.5, 20);
  for (double v : {0.1, 0.2, 0.3, 0.4}) p.RecordFailure(v);
  p.EndIteration(2);
  // floor(0.5 * 4) = 2nd largest = 0.3.
  EXPECT_DOUBLE_EQ(p.theta(), 0.3);
}

TEST(ThresholdTest, AdaptiveBetaNearZeroPicksLargest) {
  ThresholdPolicy p(ThresholdRule::kAdaptive, 0.0, 20);
  for (double v : {0.05, 0.45, 0.25}) p.RecordFailure(v);
  p.EndIteration(2);
  EXPECT_DOUBLE_EQ(p.theta(), 0.45);
}

TEST(ThresholdTest, AdaptiveBetaOnePicksSmallest) {
  ThresholdPolicy p(ThresholdRule::kAdaptive, 1.0, 20);
  for (double v : {0.05, 0.45, 0.25}) p.RecordFailure(v);
  p.EndIteration(2);
  EXPECT_DOUBLE_EQ(p.theta(), 0.05);
}

TEST(ThresholdTest, EmptyListLeavesThetaUnchanged) {
  ThresholdPolicy p(ThresholdRule::kAdaptive, 0.1, 20);
  p.EndIteration(2);
  EXPECT_DOUBLE_EQ(p.theta(), 0.5);
}

TEST(ThresholdTest, ListClearedBetweenIterations) {
  ThresholdPolicy p(ThresholdRule::kAdaptive, 0.1, 20);
  p.RecordFailure(0.4);
  p.EndIteration(2);
  EXPECT_EQ(p.num_recorded(), 0u);
  p.RecordFailure(0.2);
  p.EndIteration(3);
  EXPECT_DOUBLE_EQ(p.theta(), 0.2);
}

TEST(ThresholdTest, AdaptiveDecreasesOverIterations) {
  // Failures are by construction below the current theta, so theta is
  // non-increasing under the adaptive rule.
  ThresholdPolicy p(ThresholdRule::kAdaptive, 0.3, 20);
  double prev = p.theta();
  for (int t = 2; t <= 6; ++t) {
    p.RecordFailure(prev * 0.9);
    p.RecordFailure(prev * 0.5);
    p.RecordFailure(prev * 0.2);
    p.EndIteration(t);
    EXPECT_LE(p.theta(), prev);
    prev = p.theta();
  }
}

}  // namespace
}  // namespace pegasus
