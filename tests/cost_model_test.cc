#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/core/cost_model.h"
#include "src/core/merge_engine.h"
#include "src/core/personal_weights.h"
#include "src/eval/error_eval.h"
#include "src/graph/generators.h"
#include "src/util/bits.h"
#include "tests/test_util.h"

namespace pegasus {
namespace {

using ::pegasus::testing::CompleteGraph;
using ::pegasus::testing::Fig3Graph;
using ::pegasus::testing::PathGraph;
using ::pegasus::testing::TwoCliquesGraph;

// Brute-force total pair weight between two supernodes.
double BrutePotential(const SummaryGraph& s, const PersonalWeights& w,
                      SupernodeId a, SupernodeId b) {
  double total = 0.0;
  if (a == b) {
    const auto& m = s.members(a);
    for (size_t i = 0; i < m.size(); ++i) {
      for (size_t j = i + 1; j < m.size(); ++j) {
        total += w.PairWeight(m[i], m[j]);
      }
    }
    return total;
  }
  for (NodeId u : s.members(a)) {
    for (NodeId v : s.members(b)) total += w.PairWeight(u, v);
  }
  return total;
}

// Brute-force weighted count of real edges between two supernodes.
double BruteEdgeWeight(const Graph& g, const SummaryGraph& s,
                       const PersonalWeights& w, SupernodeId a,
                       SupernodeId b) {
  double total = 0.0;
  for (const Edge& e : g.CanonicalEdges()) {
    const SupernodeId su = s.supernode_of(e.u);
    const SupernodeId sv = s.supernode_of(e.v);
    if ((su == a && sv == b) || (su == b && sv == a)) {
      total += w.PairWeight(e.u, e.v);
    }
  }
  return total;
}

TEST(CostModelTest, PairPotentialMatchesBruteForce) {
  Graph g = TwoCliquesGraph(3);
  SummaryGraph s = SummaryGraph::Identity(g);
  auto w = PersonalWeights::Compute(g, {0}, 1.5);
  CostModel cm(g, w, s);
  s.MergeSupernodes(0, 1);
  cm.OnMerge(0, 1, s.supernode_of(0));
  s.MergeSupernodes(3, 4);
  cm.OnMerge(3, 4, s.supernode_of(3));
  for (SupernodeId a : s.ActiveSupernodes()) {
    for (SupernodeId b : s.ActiveSupernodes()) {
      if (b < a) continue;
      EXPECT_NEAR(cm.PairPotential(a, b), BrutePotential(s, w, a, b), 1e-9)
          << "pair " << a << "," << b;
    }
  }
}

TEST(CostModelTest, CollectIncidentMatchesBruteForce) {
  Graph g = Fig3Graph();
  SummaryGraph s = SummaryGraph::Identity(g);
  auto w = PersonalWeights::Compute(g, {4}, 1.25);
  CostModel cm(g, w, s);
  SupernodeId m1 = s.MergeSupernodes(0, 1);
  cm.OnMerge(0, 1, m1);
  SupernodeId m2 = s.MergeSupernodes(2, 3);
  cm.OnMerge(2, 3, m2);

  std::vector<IncidentPair> incident;
  for (SupernodeId a : s.ActiveSupernodes()) {
    cm.CollectIncident(a, incident);
    std::map<SupernodeId, double> got;
    for (const auto& p : incident) got[p.neighbor] = p.edge_weight;
    for (SupernodeId b : s.ActiveSupernodes()) {
      const double expected = BruteEdgeWeight(g, s, w, a, b);
      const double actual = got.count(b) ? got[b] : 0.0;
      EXPECT_NEAR(actual, expected, 1e-9) << "pair " << a << "," << b;
    }
  }
}

TEST(CostModelTest, CollectIncidentEdgeCounts) {
  Graph g = TwoCliquesGraph(3);  // cliques {0,1,2}, {3,4,5}, bridge 0-3
  SummaryGraph s = SummaryGraph::Identity(g);
  auto w = PersonalWeights::Compute(g, {}, 1.0);
  CostModel cm(g, w, s);
  SupernodeId left = s.MergeSupernodes(0, 1);
  cm.OnMerge(0, 1, left);
  const SupernodeId prev = left;
  left = s.MergeSupernodes(prev, 2);
  cm.OnMerge(prev, 2, left);

  std::vector<IncidentPair> incident;
  cm.CollectIncident(left, incident);
  std::map<SupernodeId, uint32_t> counts;
  for (const auto& p : incident) counts[p.neighbor] = p.edge_count;
  EXPECT_EQ(counts[left], 3u);               // internal clique edges
  EXPECT_EQ(counts[s.supernode_of(3)], 1u);  // the bridge
}

TEST(CostModelTest, PairCostUniformWeights) {
  Graph g = PathGraph(8);  // |V| = 8 => 2 log2|V| = 6 bits per error
  SummaryGraph s = SummaryGraph::Identity(g);
  auto w = PersonalWeights::Compute(g, {}, 1.0);
  CostModel cm(g, w, s);
  EXPECT_DOUBLE_EQ(cm.BitsPerError(), 6.0);
  // potential 4, edges 3, |S| = 8: with = 2*3 + 6*1 = 12; without = 18.
  EXPECT_DOUBLE_EQ(cm.PairCost(4.0, 3.0, 8), 12.0);
  EXPECT_TRUE(cm.SuperedgeBeneficial(4.0, 3.0, 8));
  // potential 4, edges 1: with = 6 + 18 = 24; without = 6.
  EXPECT_DOUBLE_EQ(cm.PairCost(4.0, 1.0, 8), 6.0);
  EXPECT_FALSE(cm.SuperedgeBeneficial(4.0, 1.0, 8));
}

TEST(CostModelTest, EntropyEncodingNeverWorse) {
  Graph g = PathGraph(16);
  SummaryGraph s = SummaryGraph::Identity(g);
  auto w = PersonalWeights::Compute(g, {}, 1.0);
  CostModel ec(g, w, s, EncodingScheme::kErrorCorrection);
  CostModel both(g, w, s, EncodingScheme::kBestOfBoth);
  for (double potential : {1.0, 10.0, 100.0}) {
    for (double edges : {0.0, 1.0, 5.0, 50.0}) {
      if (edges > potential) continue;
      EXPECT_LE(both.PairCost(potential, edges, 16),
                ec.PairCost(potential, edges, 16) + 1e-12);
    }
  }
}

TEST(CostModelTest, MergePredictionMatchesPostMergeCost) {
  Graph g = GenerateBarabasiAlbert(60, 2, 11);
  SummaryGraph s = SummaryGraph::Identity(g);
  auto w = PersonalWeights::Compute(g, {0, 5}, 1.25);
  CostModel cm(g, w, s);
  MergeEngine engine(g, s, cm, MergeScore::kRelative);

  // Merge several random-ish pairs and check the evaluation's internal
  // consistency each time: EvaluateMerge's "merged" cost must equal the
  // supernode cost measured after actually merging.
  for (int step = 0; step < 10; ++step) {
    auto active = s.ActiveSupernodes();
    SupernodeId a = active[step % active.size()];
    SupernodeId b = active[(step * 7 + 1) % active.size()];
    if (a == b) continue;

    std::vector<IncidentPair> incident;
    cm.CollectIncident(a, incident);
    const double cost_a = cm.SupernodeCost(a);
    const double cost_b = cm.SupernodeCost(b);
    double e_ab = 0.0;
    cm.CollectIncident(a, incident);
    for (const auto& p : incident) {
      if (p.neighbor == b) e_ab = p.edge_weight;
    }
    const double cost_ab =
        cm.PairCost(cm.PairPotential(a, b), e_ab, s.num_supernodes());

    MergeEval eval = cm.EvaluateMerge(a, b);
    const double predicted_merged =
        (cost_a + cost_b - cost_ab) - eval.absolute;

    SupernodeId winner = engine.ApplyMerge(a, b);
    const double actual_merged = cm.SupernodeCost(winner);
    EXPECT_NEAR(predicted_merged, actual_merged, 1e-6) << "step " << step;
  }
}

TEST(CostModelTest, RelativeScoreIsNormalizedAbsolute) {
  Graph g = TwoCliquesGraph(4);
  SummaryGraph s = SummaryGraph::Identity(g);
  auto w = PersonalWeights::Compute(g, {0}, 1.5);
  CostModel cm(g, w, s);
  MergeEval eval = cm.EvaluateMerge(1, 2);
  ASSERT_NE(eval.relative, 0.0);
  // relative = absolute / base, so absolute / relative recovers base > 0.
  EXPECT_GT(eval.absolute / eval.relative, 0.0);
  EXPECT_DOUBLE_EQ(eval.score(MergeScore::kRelative), eval.relative);
  EXPECT_DOUBLE_EQ(eval.score(MergeScore::kAbsolute), eval.absolute);
}

TEST(CostModelTest, TwinMergeIsFavorable) {
  // In Fig. 3, nodes a=0 and b=1 share exactly the same neighbors {c, d}:
  // merging them loses nothing, so relative reduction should be high;
  // merging a=0 with e=4 (disjoint neighborhoods) should score lower.
  Graph g = Fig3Graph();
  SummaryGraph s = SummaryGraph::Identity(g);
  auto w = PersonalWeights::Compute(g, {}, 1.0);
  CostModel cm(g, w, s);
  MergeEval twins = cm.EvaluateMerge(0, 1);
  MergeEval strangers = cm.EvaluateMerge(0, 4);
  EXPECT_GT(twins.relative, strangers.relative);
  EXPECT_GT(twins.relative, 0.0);
}

TEST(CostModelTest, OnMergeUpdatesPiSums) {
  Graph g = PathGraph(6);
  auto w = PersonalWeights::Compute(g, {0}, 2.0);
  SummaryGraph s = SummaryGraph::Identity(g);
  CostModel cm(g, w, s);
  const double pi0 = cm.Pi(0), pi1 = cm.Pi(1);
  SupernodeId winner = s.MergeSupernodes(0, 1);
  cm.OnMerge(0, 1, winner);
  EXPECT_NEAR(cm.Pi(winner), pi0 + pi1, 1e-12);
  EXPECT_NEAR(cm.Pi2(winner), pi0 * pi0 + pi1 * pi1, 1e-12);
}

// Integration identity: when every supernode's superedges are chosen
// optimally, the decomposed cost (Eq. 8) equals Size(G̅) + log2|V| * RE
// (Eq. 5) computed independently by the error evaluator.
TEST(CostModelTest, CostDecompositionMatchesEq5) {
  Graph g = GenerateBarabasiAlbert(40, 2, 5);
  auto w = PersonalWeights::Compute(g, {3}, 1.5);
  SummaryGraph s = SummaryGraph::Identity(g);
  CostModel cm(g, w, s);
  MergeEngine engine(g, s, cm, MergeScore::kRelative);

  // A few merges to make the summary non-trivial.
  engine.ApplyMerge(0, 1);
  engine.ApplyMerge(2, 3);
  engine.ApplyMerge(s.supernode_of(0), s.supernode_of(4));
  // Re-select all superedges under the final |S| so decisions are
  // consistent with the decomposition below.
  for (SupernodeId a : s.ActiveSupernodes()) engine.ReselectSuperedges(a);

  const uint32_t ns = s.num_supernodes();
  double pair_total = 0.0;
  auto active = s.ActiveSupernodes();
  for (size_t i = 0; i < active.size(); ++i) {
    for (size_t j = i; j < active.size(); ++j) {
      const double potential = BrutePotential(s, w, active[i], active[j]);
      const double edges = BruteEdgeWeight(g, s, w, active[i], active[j]);
      pair_total += cm.PairCost(potential, edges, ns);
    }
  }
  const double decomposed =
      static_cast<double>(g.num_nodes()) * Log2Bits(ns) + pair_total;
  const double direct = PersonalizedCost(g, s, w);
  EXPECT_NEAR(decomposed, direct, 1e-6);
}

}  // namespace
}  // namespace pegasus
