// PSB1 container tests: round-trip byte stability, magic dispatch, the
// corruption matrix behind `pegasus view --validate` (every checksum
// failure names its section), header/count validation, and the byte-wise
// codecs that keep encode/decode correct on any host endianness.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "src/core/binary_summary_io.h"
#include "src/core/pegasus.h"
#include "src/core/psb_format.h"
#include "src/core/summary_io.h"
#include "src/query/summary_view.h"
#include "tests/test_util.h"

namespace pegasus {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {(std::istreambuf_iterator<char>(in)),
          std::istreambuf_iterator<char>()};
}

void WriteBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// The golden summary written as a PSB1 file at `path`; returns the byte
// image for in-place tampering.
std::vector<uint8_t> GoldenPsb(const std::string& path, bool compact) {
  const Graph g = ::pegasus::testing::QueryGoldenGraph();
  const SummaryGraph summary = ::pegasus::testing::QueryGoldenSummary(g);
  const SummaryView view(summary);
  PsbWriteOptions opts;
  opts.compact = compact;
  EXPECT_TRUE(SaveSummaryBinary(view.layout(), path, opts));
  auto bytes = ReadFileBytes(path);
  EXPECT_TRUE(bytes.has_value());
  return *std::move(bytes);
}

TEST(BinarySummaryIoTest, TextToBinaryToTextIsByteStable) {
  const Graph g = ::pegasus::testing::QueryGoldenGraph();
  const SummaryGraph summary = ::pegasus::testing::QueryGoldenSummary(g);
  const std::string text1 = TempPath("rt1.summary");
  const std::string text2 = TempPath("rt2.summary");
  const std::string psb = TempPath("rt.psb");
  ASSERT_TRUE(SaveSummary(summary, text1));

  for (bool compact : {false, true}) {
    auto loaded = LoadSummary(text1);
    ASSERT_TRUE(loaded.has_value());
    const SummaryView view(*loaded);
    PsbWriteOptions opts;
    opts.compact = compact;
    ASSERT_TRUE(SaveSummaryBinary(view.layout(), psb, opts));
    ASSERT_TRUE(SniffPsbMagic(psb));
    auto back = LoadSummaryBinary(psb);
    ASSERT_TRUE(back.has_value()) << back.status().ToString();
    ASSERT_TRUE(SaveSummary(*back, text2));
    EXPECT_EQ(FileBytes(text1), FileBytes(text2)) << "compact=" << compact;
    std::remove(text2.c_str());
  }
  std::remove(text1.c_str());
  std::remove(psb.c_str());
}

TEST(BinarySummaryIoTest, BinaryRoundTripIsByteStable) {
  // load(psb) -> save(psb) reproduces the raw file byte for byte, and a
  // compact file re-saved compact is byte-stable too.
  for (bool compact : {false, true}) {
    const std::string path1 = TempPath("bstable1.psb");
    const std::string path2 = TempPath("bstable2.psb");
    GoldenPsb(path1, compact);
    auto loaded = LoadSummaryBinary(path1);
    ASSERT_TRUE(loaded.has_value()) << loaded.status().ToString();
    const SummaryView view(*loaded);
    PsbWriteOptions opts;
    opts.compact = compact;
    ASSERT_TRUE(SaveSummaryBinary(view.layout(), path2, opts));
    EXPECT_EQ(FileBytes(path1), FileBytes(path2)) << "compact=" << compact;
    std::remove(path1.c_str());
    std::remove(path2.c_str());
  }
}

TEST(BinarySummaryIoTest, CompactIsSmallerAndEquivalent) {
  const std::string raw = TempPath("size_raw.psb");
  const std::string compact = TempPath("size_compact.psb");
  GoldenPsb(raw, /*compact=*/false);
  GoldenPsb(compact, /*compact=*/true);
  EXPECT_LT(FileBytes(compact).size(), FileBytes(raw).size());

  auto a = LoadSummaryBinary(raw);
  auto b = LoadSummaryBinary(compact);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->num_nodes(), b->num_nodes());
  EXPECT_EQ(a->num_supernodes(), b->num_supernodes());
  EXPECT_EQ(a->num_superedges(), b->num_superedges());
  std::remove(raw.c_str());
  std::remove(compact.c_str());
}

TEST(BinarySummaryIoTest, LoadSummaryDispatchesOnMagic) {
  // The text entry point serves .psb files transparently: same counts,
  // same answers, picked by the 4-byte magic (not the file name).
  const std::string psb = TempPath("dispatch.psb");
  GoldenPsb(psb, /*compact=*/false);
  auto via_text_api = LoadSummary(psb);
  ASSERT_TRUE(via_text_api.has_value()) << via_text_api.status().ToString();
  auto direct = LoadSummaryBinary(psb);
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(via_text_api->num_nodes(), direct->num_nodes());
  EXPECT_EQ(via_text_api->num_supernodes(), direct->num_supernodes());
  EXPECT_EQ(via_text_api->num_superedges(), direct->num_superedges());
  std::remove(psb.c_str());
}

TEST(BinarySummaryIoTest, SniffRejectsTextAndMissingFiles) {
  const std::string text = TempPath("sniff.summary");
  {
    std::ofstream out(text);
    out << "PEGASUS-SUMMARY v1\n";
  }
  EXPECT_FALSE(SniffPsbMagic(text));
  EXPECT_FALSE(SniffPsbMagic("/no/such/file.psb"));
  std::remove(text.c_str());
}

TEST(BinarySummaryIoTest, ValidateAcceptsPristineFile) {
  for (bool compact : {false, true}) {
    const std::string path = TempPath("pristine.psb");
    const auto bytes = GoldenPsb(path, compact);
    const Status s = ValidatePsb(bytes.data(), bytes.size(), path);
    EXPECT_TRUE(s) << s.ToString();
    std::remove(path.c_str());
  }
}

TEST(BinarySummaryIoTest, BitFlipInAnySectionNamesThatSection) {
  // The corruption matrix: flip one payload byte per section; validation
  // must fail on the checksum and the message must name the section.
  const std::string path = TempPath("flip.psb");
  const auto pristine = GoldenPsb(path, /*compact=*/false);
  auto header =
      psb::ParsePsbHeader(pristine.data(), pristine.size(), pristine.size(),
                          path);
  ASSERT_TRUE(header.has_value());
  for (const auto& section : header->sections) {
    ASSERT_GT(section.length, 0u) << section.id;
    auto bytes = pristine;
    bytes[section.offset + section.length / 2] ^= 0x40;
    const Status s = ValidatePsb(bytes.data(), bytes.size(), path);
    ASSERT_FALSE(s) << "section " << section.id << " flip undetected";
    EXPECT_EQ(s.code(), StatusCode::kDataLoss);
    EXPECT_NE(s.ToString().find(psb::SectionName(section.id)),
              std::string::npos)
        << "message does not name section " << section.id << ": "
        << s.ToString();
  }
  std::remove(path.c_str());
}

TEST(BinarySummaryIoTest, LoadRejectsFlippedPayload) {
  // LoadSummaryBinary always verifies checksums, so the same flips fail
  // the loader too (not only the explicit validator).
  const std::string path = TempPath("flip_load.psb");
  const auto pristine = GoldenPsb(path, /*compact=*/false);
  auto header =
      psb::ParsePsbHeader(pristine.data(), pristine.size(), pristine.size(),
                          path);
  ASSERT_TRUE(header.has_value());
  auto bytes = pristine;
  const auto& section = header->sections[4];  // edge_dst
  bytes[section.offset] ^= 0x01;
  WriteBytes(path, bytes);
  const auto loaded = LoadSummaryBinary(path);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(BinarySummaryIoTest, TruncationMatrix) {
  const std::string path = TempPath("trunc.psb");
  const auto pristine = GoldenPsb(path, /*compact=*/false);
  // Mid-magic, mid-header, mid-table, one byte short, and an empty file.
  for (size_t keep : {size_t{0}, size_t{3}, size_t{40},
                      psb::kTablePrefixBytes - 1, psb::kTablePrefixBytes,
                      pristine.size() - 1}) {
    std::vector<uint8_t> bytes(pristine.begin(), pristine.begin() + keep);
    const Status s = ValidatePsb(bytes.data(), bytes.size(), path);
    ASSERT_FALSE(s) << "accepted a " << keep << "-byte truncation";
    EXPECT_EQ(s.code(), StatusCode::kDataLoss) << keep;
    WriteBytes(path, bytes);
    EXPECT_FALSE(LoadSummaryBinary(path).has_value()) << keep;
  }
  std::remove(path.c_str());
}

TEST(BinarySummaryIoTest, RejectsTrailingBytes) {
  const std::string path = TempPath("trail.psb");
  auto bytes = GoldenPsb(path, /*compact=*/false);
  bytes.push_back(0);
  const Status s = ValidatePsb(bytes.data(), bytes.size(), path);
  EXPECT_FALSE(s);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(BinarySummaryIoTest, RejectsBadMagicVersionAndHeaderChecksum) {
  const std::string path = TempPath("header.psb");
  const auto pristine = GoldenPsb(path, /*compact=*/false);

  auto flipped = pristine;
  flipped[0] = 'X';  // magic
  EXPECT_FALSE(ValidatePsb(flipped.data(), flipped.size(), path));

  flipped = pristine;
  flipped[5] = psb::kPsbVersion + 1;  // unimplemented version
  const Status version = ValidatePsb(flipped.data(), flipped.size(), path);
  ASSERT_FALSE(version);
  EXPECT_NE(version.ToString().find("version"), std::string::npos)
      << version.ToString();

  flipped = pristine;
  flipped[48] ^= 0xff;  // header checksum field
  const Status checksum = ValidatePsb(flipped.data(), flipped.size(), path);
  ASSERT_FALSE(checksum);
  EXPECT_NE(checksum.ToString().find("checksum"), std::string::npos)
      << checksum.ToString();
  std::remove(path.c_str());
}

TEST(BinarySummaryIoTest, RejectsSupernodeCountMismatch) {
  // A structurally clean file whose header declares 2 supernodes while
  // the labels only ever use id 0: the shared count validation must fail
  // up front, naming both numbers.
  const uint32_t node_to_super[2] = {0, 0};
  const uint64_t member_begin[3] = {0, 2, 2};
  const uint32_t members[2] = {0, 1};
  const uint64_t edge_begin[3] = {0, 0, 0};
  const double member_count[2] = {2.0, 0.0};
  const double zeros[2] = {0.0, 0.0};

  SummaryLayout layout;
  layout.num_nodes = 2;
  layout.num_supernodes = 2;
  layout.num_superedges = 0;
  layout.num_edge_slots = 0;
  layout.node_to_super = node_to_super;
  layout.member_begin = member_begin;
  layout.members = members;
  layout.edge_begin = edge_begin;
  layout.edge_dst = nullptr;
  layout.edge_weight = nullptr;
  layout.edge_density_w = nullptr;
  layout.edge_density_uw = nullptr;
  layout.member_count = member_count;
  layout.member_deg_w = zeros;
  layout.member_deg_uw = zeros;
  layout.self_density_w = zeros;
  layout.self_density_uw = zeros;

  const std::string path = TempPath("count_mismatch.psb");
  ASSERT_TRUE(SaveSummaryBinary(layout, path));
  const auto loaded = LoadSummaryBinary(path);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  const std::string message = loaded.status().ToString();
  EXPECT_NE(message.find("2 supernodes"), std::string::npos) << message;
  EXPECT_NE(message.find("1 distinct"), std::string::npos) << message;
  std::remove(path.c_str());
}

TEST(BinarySummaryIoTest, LoadRejectsMissingFile) {
  const auto s = LoadSummaryBinary("/no/such/file.psb");
  ASSERT_FALSE(s.has_value());
  EXPECT_EQ(s.status().code(), StatusCode::kNotFound);
}

// --- Byte-wise codecs -------------------------------------------------------
//
// The codecs are defined over explicit byte positions, never memcpy, so
// these fixed byte arrays pin the little-endian wire form on every host
// (a big-endian machine must produce/consume the same bytes).

TEST(PsbCodecTest, FixedPointU32U64) {
  const uint8_t u32_bytes[4] = {0x78, 0x56, 0x34, 0x12};
  EXPECT_EQ(psb::GetU32(u32_bytes), 0x12345678u);
  const uint8_t u64_bytes[8] = {0xf0, 0xde, 0xbc, 0x9a,
                                0x78, 0x56, 0x34, 0x12};
  EXPECT_EQ(psb::GetU64(u64_bytes), 0x123456789abcdef0ULL);

  std::string out;
  psb::PutU32(&out, 0x12345678u);
  psb::PutU64(&out, 0x123456789abcdef0ULL);
  ASSERT_EQ(out.size(), 12u);
  EXPECT_EQ(std::memcmp(out.data(), u32_bytes, 4), 0);
  EXPECT_EQ(std::memcmp(out.data() + 4, u64_bytes, 8), 0);
}

TEST(PsbCodecTest, VarintRoundTripAndWireForm) {
  // 300 = 0b100101100 -> low group 0x2c | 0x80, high group 0x02.
  std::string out;
  psb::PutVarint(&out, 300);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(static_cast<uint8_t>(out[0]), 0xacu);
  EXPECT_EQ(static_cast<uint8_t>(out[1]), 0x02u);

  for (uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 16383ULL, 16384ULL,
                     0xffffffffULL, 0xffffffffffffffffULL}) {
    std::string buf;
    psb::PutVarint(&buf, v);
    const uint8_t* p = reinterpret_cast<const uint8_t*>(buf.data());
    uint64_t decoded = 0;
    ASSERT_TRUE(psb::GetVarint(&p, p + buf.size(), &decoded)) << v;
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(p, reinterpret_cast<const uint8_t*>(buf.data()) + buf.size());
  }
}

TEST(PsbCodecTest, VarintRejectsTruncationAndOverlength) {
  const uint8_t truncated[2] = {0x80, 0x80};  // continuation, no terminator
  const uint8_t* p = truncated;
  uint64_t v = 0;
  EXPECT_FALSE(psb::GetVarint(&p, truncated + 2, &v));

  uint8_t overlong[11];
  for (auto& b : overlong) b = 0x80;
  overlong[10] = 0x01;  // 11 groups: one past the u64 maximum
  p = overlong;
  EXPECT_FALSE(psb::GetVarint(&p, overlong + 11, &v));
}

TEST(PsbCodecTest, ZigZag) {
  EXPECT_EQ(psb::ZigZagEncode(0), 0u);
  EXPECT_EQ(psb::ZigZagEncode(-1), 1u);
  EXPECT_EQ(psb::ZigZagEncode(1), 2u);
  EXPECT_EQ(psb::ZigZagEncode(-2), 3u);
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1},
                    std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    EXPECT_EQ(psb::ZigZagDecode(psb::ZigZagEncode(v)), v);
  }
}

TEST(PsbCodecTest, Fnv1aMatchesReferenceVectors) {
  // Classic FNV-1a 64 test vectors.
  EXPECT_EQ(psb::Fnv1a(nullptr, 0), psb::kFnvOffset64);
  const uint8_t a[1] = {'a'};
  EXPECT_EQ(psb::Fnv1a(a, 1), 0xaf63dc4c8601ec8cULL);
  const uint8_t foobar[6] = {'f', 'o', 'o', 'b', 'a', 'r'};
  EXPECT_EQ(psb::Fnv1a(foobar, 6), 0x85944171f73967e8ULL);
}

TEST(PsbCodecTest, SectionNamesAndElementCounts) {
  EXPECT_STREQ(psb::SectionName(1), "node_to_super");
  EXPECT_STREQ(psb::SectionName(13), "self_density_uw");
  EXPECT_STREQ(psb::SectionName(0), "unknown");
  EXPECT_STREQ(psb::SectionName(14), "unknown");
  // V=10, S=4, E=6.
  EXPECT_EQ(psb::SectionElementCount(1, 10, 4, 6), 10u);  // node_to_super
  EXPECT_EQ(psb::SectionElementCount(2, 10, 4, 6), 5u);   // member_begin S+1
  EXPECT_EQ(psb::SectionElementCount(5, 10, 4, 6), 6u);   // edge_dst
  EXPECT_EQ(psb::SectionElementCount(9, 10, 4, 6), 4u);   // member_count
}

}  // namespace
}  // namespace pegasus
