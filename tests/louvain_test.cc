#include <gtest/gtest.h>

#include <set>

#include "src/graph/generators.h"
#include "src/partition/louvain.h"
#include "src/partition/random_partition.h"
#include "tests/test_util.h"

namespace pegasus {
namespace {

using ::pegasus::testing::TwoCliquesGraph;

TEST(LouvainTest, SeparatesTwoCliques) {
  Graph g = TwoCliquesGraph(8);
  auto communities = LouvainCommunities(g);
  // All of clique 1 shares one label, all of clique 2 another.
  for (NodeId u = 1; u < 8; ++u) EXPECT_EQ(communities[u], communities[0]);
  for (NodeId u = 9; u < 16; ++u) EXPECT_EQ(communities[u], communities[8]);
  EXPECT_NE(communities[0], communities[8]);
}

TEST(LouvainTest, FindsPlantedBlocks) {
  Graph g = GeneratePlantedPartition(400, 8, 10.0, 0.5, 33);
  auto communities = LouvainCommunities(g);
  Partition p;
  p.part_of = communities;
  uint32_t max_label = 0;
  for (uint32_t l : communities) max_label = std::max(max_label, l);
  p.num_parts = max_label + 1;
  // Modularity should be clearly positive and beat a random partition.
  Partition random = RandomPartition(g.num_nodes(), p.num_parts, 1);
  EXPECT_GT(Modularity(g, p), 0.3);
  EXPECT_GT(Modularity(g, p), Modularity(g, random) + 0.2);
}

TEST(LouvainTest, PartitionHasRequestedParts) {
  Graph g = GeneratePlantedPartition(300, 12, 8.0, 0.5, 34);
  Partition p = LouvainPartition(g, 4);
  EXPECT_EQ(p.num_parts, 4u);
  EXPECT_TRUE(p.Valid(g.num_nodes()));
}

TEST(LouvainTest, PartitionReasonablyBalanced) {
  Graph g = GeneratePlantedPartition(600, 24, 8.0, 1.0, 35);
  Partition p = LouvainPartition(g, 8);
  EXPECT_LT(BalanceFactor(p, g.num_nodes()), 2.5);
}

TEST(LouvainTest, SingleCommunityForClique) {
  Graph g = ::pegasus::testing::CompleteGraph(12);
  auto communities = LouvainCommunities(g);
  std::set<uint32_t> labels(communities.begin(), communities.end());
  EXPECT_EQ(labels.size(), 1u);
}

TEST(LouvainTest, DeterministicForSeed) {
  Graph g = GeneratePlantedPartition(200, 8, 8.0, 0.5, 36);
  LouvainConfig config;
  config.seed = 4;
  auto a = LouvainCommunities(g, config);
  auto b = LouvainCommunities(g, config);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace pegasus
