#include <gtest/gtest.h>

#include "src/graph/graph.h"
#include "src/graph/graph_builder.h"
#include "tests/test_util.h"

namespace pegasus {
namespace {

using ::pegasus::testing::CompleteGraph;
using ::pegasus::testing::PathGraph;
using ::pegasus::testing::StarGraph;

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.MaxDegree(), 0u);
  EXPECT_DOUBLE_EQ(g.MeanDegree(), 0.0);
}

TEST(GraphTest, PathGraphBasics) {
  Graph g = PathGraph(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(GraphTest, NeighborsSorted) {
  GraphBuilder b(5);
  b.AddEdge(3, 0);
  b.AddEdge(3, 4);
  b.AddEdge(3, 1);
  Graph g = std::move(b).Build();
  auto nb = g.neighbors(3);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_EQ(nb[0], 0u);
  EXPECT_EQ(nb[1], 1u);
  EXPECT_EQ(nb[2], 4u);
}

TEST(GraphBuilderTest, DeduplicatesEdges) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);
  b.AddEdge(0, 1);
  Graph g = std::move(b).Build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilderTest, DropsSelfLoops) {
  GraphBuilder b(3);
  b.AddEdge(1, 1);
  b.AddEdge(0, 2);
  Graph g = std::move(b).Build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.HasEdge(1, 1));
}

TEST(GraphTest, CanonicalEdges) {
  Graph g = PathGraph(4);
  auto edges = g.CanonicalEdges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], (Edge{0, 1}));
  EXPECT_EQ(edges[1], (Edge{1, 2}));
  EXPECT_EQ(edges[2], (Edge{2, 3}));
}

TEST(GraphTest, SizeInBitsMatchesEq4) {
  Graph g = CompleteGraph(8);  // |V|=8, |E|=28, log2|V|=3
  EXPECT_DOUBLE_EQ(g.SizeInBits(), 2.0 * 28 * 3.0);
}

TEST(GraphTest, SizeInBitsSingleNode) {
  Graph g = PathGraph(1);
  EXPECT_DOUBLE_EQ(g.SizeInBits(), 0.0);
}

TEST(GraphTest, DegreeStatistics) {
  Graph g = StarGraph(6);  // center degree 6, leaves 1
  EXPECT_EQ(g.MaxDegree(), 6u);
  EXPECT_NEAR(g.MeanDegree(), 12.0 / 7.0, 1e-12);
}

TEST(GraphTest, BuildGraphConvenience) {
  Graph g = BuildGraph(4, {{0, 1}, {2, 3}, {1, 2}});
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.HasEdge(1, 2));
}

TEST(GraphTest, CompleteGraphDegrees) {
  Graph g = CompleteGraph(6);
  for (NodeId u = 0; u < 6; ++u) EXPECT_EQ(g.degree(u), 5u);
  EXPECT_EQ(g.num_edges(), 15u);
}

}  // namespace
}  // namespace pegasus
