// Determinism suite for the threading model (ISSUE 2) and the canonical
// query order (ISSUE 5):
//
//  1. num_threads = 1 must reproduce the pre-parallel-engine serial
//     output bit-for-bit — pinned here against golden fixtures captured
//     from the implementation before the parallel engine landed.
//  2. The same (graph, T, k, seed) must yield an identical summary at
//     every thread count of the parallel engine (num_threads in {2, 8}
//     here; the broader sweep lives in parallel_engine_test.cc), and each
//     setting must be run-to-run deterministic.
//  3. Every query family's answer bytes must match checked-in golden
//     hashes (tests/test_util.h). The canonical sorted-adjacency pipeline
//     fixes every floating-point summation order by the data alone, so
//     these hashes must agree across standard libraries (gcc/libstdc++
//     and clang/libc++ both run this suite in CI), platforms, and thread
//     counts.
//
// The golden numbers pin the serial merge *schedule*, which consumes one
// shared Rng stream — any accidental reordering of draws or evaluations
// shows up as a changed supernode count long before it shows up in
// quality metrics. They were captured on glibc/x86-64; a libm that rounds
// log2 differently in the last ulp could in principle flip a
// near-tie merge decision, so if this test ever fails on an exotic
// platform while pegasus_test passes, re-pin the constants rather than
// suspecting the engine.

#include <gtest/gtest.h>

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <tuple>
#include <vector>

#include "src/core/pegasus.h"
#include "src/graph/generators.h"
#include "src/query/query_engine.h"
#include "src/query/summary_view.h"
#include "tests/test_util.h"

namespace pegasus {
namespace {

struct GoldenCase {
  NodeId nodes;
  int attach;          // Barabasi-Albert edges per new node
  uint64_t graph_seed;
  uint64_t run_seed;
  double alpha;
  int max_iterations;
  double ratio;
  std::vector<NodeId> targets;
  // Expected pre-PR serial output.
  uint32_t supernodes;
  uint64_t superedges;
  double size_bits;
  uint64_t merges;
  uint64_t evaluations;
  uint64_t failures;
  int iterations;
  uint64_t dropped;
};

SummarizationResult RunCase(const GoldenCase& c, int num_threads) {
  Graph g = GenerateBarabasiAlbert(c.nodes, c.attach, c.graph_seed);
  PegasusConfig config;
  config.seed = c.run_seed;
  config.alpha = c.alpha;
  config.max_iterations = c.max_iterations;
  config.num_threads = num_threads;
  return *SummarizeGraphToRatio(g, c.targets, c.ratio, config);
}

// Captured from the serial implementation at the commit introducing the
// parallel engine (identical to the pre-PR implementation on these
// fixtures; verified by building both).
const GoldenCase kGoldenA{400, 3, 3, 77, 1.25, 20, 0.5, {1, 2},
                          248, 448, 10308.638418, 152, 9216, 1604, 9, 0};
const GoldenCase kGoldenB{250, 4, 9, 12345, 1.5, 8, 0.3, {0, 5, 9},
                          175, 192, 4724.067845, 75, 6682, 874, 8, 265};

void ExpectMatchesGolden(const GoldenCase& c) {
  const SummarizationResult r = RunCase(c, /*num_threads=*/1);
  EXPECT_EQ(r.summary.num_supernodes(), c.supernodes);
  EXPECT_EQ(r.summary.num_superedges(), c.superedges);
  EXPECT_NEAR(r.final_size_bits, c.size_bits, 1e-4);
  EXPECT_EQ(r.merge_stats.merges, c.merges);
  EXPECT_EQ(r.merge_stats.evaluations, c.evaluations);
  EXPECT_EQ(r.merge_stats.failures, c.failures);
  EXPECT_EQ(r.iterations_run, c.iterations);
  EXPECT_EQ(r.superedges_dropped, c.dropped);
}

TEST(DeterminismTest, SerialPathReproducesPrePrOutputFixtureA) {
  ExpectMatchesGolden(kGoldenA);
}

TEST(DeterminismTest, SerialPathReproducesPrePrOutputFixtureB) {
  ExpectMatchesGolden(kGoldenB);
}

// Full structural equality of two summaries.
void ExpectSameSummary(const SummaryGraph& x, const SummaryGraph& y) {
  ASSERT_EQ(x.num_nodes(), y.num_nodes());
  EXPECT_EQ(x.num_supernodes(), y.num_supernodes());
  ASSERT_EQ(x.num_superedges(), y.num_superedges());
  for (NodeId u = 0; u < x.num_nodes(); ++u) {
    ASSERT_EQ(x.supernode_of(u), y.supernode_of(u)) << "node " << u;
  }
  using E = std::tuple<SupernodeId, SupernodeId, uint32_t>;
  auto edges = [](const SummaryGraph& s) {
    std::vector<E> out;
    for (SupernodeId a : s.ActiveSupernodes()) {
      for (const auto& [b, w] : s.superedges(a)) {
        if (b >= a) out.emplace_back(a, b, w);
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(edges(x), edges(y));
}

TEST(DeterminismTest, EachThreadCountIsRunToRunDeterministic) {
  for (int threads : {1, 2, 8}) {
    const SummarizationResult r1 = RunCase(kGoldenA, threads);
    const SummarizationResult r2 = RunCase(kGoldenA, threads);
    SCOPED_TRACE(threads);
    ExpectSameSummary(r1.summary, r2.summary);
    EXPECT_DOUBLE_EQ(r1.final_size_bits, r2.final_size_bits);
    EXPECT_EQ(r1.merge_stats.merges, r2.merge_stats.merges);
  }
}

TEST(DeterminismTest, SummaryCostIdenticalAcrossParallelThreadCounts) {
  // The parallel engine's summary (and therefore its cost) is a function
  // of the seed alone: 2 and 8 workers must agree exactly.
  const SummarizationResult r2 = RunCase(kGoldenA, 2);
  const SummarizationResult r8 = RunCase(kGoldenA, 8);
  ExpectSameSummary(r2.summary, r8.summary);
  EXPECT_DOUBLE_EQ(r2.final_size_bits, r8.final_size_bits);
}

TEST(DeterminismTest, SerialScheduleIsPinnedIndependentlyOfParallel) {
  // Guard against the serial path accidentally routing through the
  // parallel engine: their schedules differ, so for this fixture the two
  // engines should not produce identical evaluation counts. (If they ever
  // legitimately converge, this documents a surprising coincidence worth
  // investigating.)
  const SummarizationResult serial = RunCase(kGoldenA, 1);
  const SummarizationResult parallel = RunCase(kGoldenA, 2);
  EXPECT_NE(serial.merge_stats.evaluations,
            parallel.merge_stats.evaluations);
}

// --- Cross-stdlib query goldens (ISSUE 5) ---------------------------------

std::string Hex(uint64_t h) {
  std::ostringstream out;
  out << "0x" << std::hex << std::setw(16) << std::setfill('0') << h;
  return out.str();
}

TEST(DeterminismTest, QueryAnswersMatchCrossStdlibGoldens) {
  const Graph g = ::pegasus::testing::QueryGoldenGraph();
  const SummaryGraph summary = ::pegasus::testing::QueryGoldenSummary(g);
  const SummaryView view(summary);
  for (const auto& c : ::pegasus::testing::QueryGoldenCases()) {
    auto canon = CanonicalizeRequest(c.request, view.num_nodes());
    ASSERT_TRUE(canon.ok()) << c.name;
    const uint64_t got =
        ::pegasus::testing::HashQueryResult(AnswerQuery(view, *canon));
    EXPECT_EQ(got, c.hash) << c.name << ": actual " << Hex(got)
                           << " golden " << Hex(c.hash);
  }
}

}  // namespace
}  // namespace pegasus
