// Shard codec tests: encode → decode identity on canonical batches and
// partials (doubles bit-exact), the fixed 26-byte request layout, and the
// rejection matrix — truncation at every field class, trailing bytes,
// unknown kinds, and adversarial counts that would overflow the
// remaining-bytes check.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/serve/shard_codec.h"
#include "src/util/status.h"

namespace pegasus::serve {
namespace {

std::vector<QueryRequest> SampleBatch() {
  std::vector<QueryRequest> requests;
  QueryRequest r;
  r.kind = QueryKind::kNeighbors;
  r.node = 5;
  r.param = 0.0;
  r.weighted = true;
  requests.push_back(r);
  r.kind = QueryKind::kRwr;
  r.node = 17;
  r.param = 0.05;
  r.weighted = false;
  r.opts.max_iterations = 100;
  r.opts.tolerance = 1e-10;
  requests.push_back(r);
  r.kind = QueryKind::kPageRank;
  r.node = 0;
  r.param = 0.85;
  r.weighted = true;
  r.opts.max_iterations = 7;
  r.opts.tolerance = 0.0;
  requests.push_back(r);
  r.kind = QueryKind::kClustering;
  r.node = 0;
  r.param = 0.0;
  r.opts = {};
  requests.push_back(r);
  return requests;
}

TEST(ShardCodecTest, BatchRoundTripIsIdentity) {
  const auto requests = SampleBatch();
  auto decoded = DecodeShardBatchBody(EncodeShardBatchBody(requests));
  ASSERT_TRUE(decoded) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ((*decoded)[i].kind, requests[i].kind) << i;
    EXPECT_EQ((*decoded)[i].node, requests[i].node) << i;
    EXPECT_EQ((*decoded)[i].param, requests[i].param) << i;
    EXPECT_EQ((*decoded)[i].weighted, requests[i].weighted) << i;
    EXPECT_EQ((*decoded)[i].opts.max_iterations,
              requests[i].opts.max_iterations)
        << i;
    EXPECT_EQ((*decoded)[i].opts.tolerance, requests[i].opts.tolerance) << i;
  }
}

TEST(ShardCodecTest, BatchLayoutIs26BytesPerRequest) {
  EXPECT_EQ(EncodeShardBatchBody({}).size(), 4u);
  EXPECT_EQ(EncodeShardBatchBody(SampleBatch()).size(),
            4u + 26u * SampleBatch().size());
}

TEST(ShardCodecTest, BatchRejectsTruncationAtEveryLength) {
  const std::string body = EncodeShardBatchBody(SampleBatch());
  for (size_t len = 0; len < body.size(); ++len) {
    auto decoded = DecodeShardBatchBody(body.substr(0, len));
    EXPECT_FALSE(decoded) << "accepted a " << len << "-byte prefix";
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ShardCodecTest, BatchRejectsTrailingBytes) {
  std::string body = EncodeShardBatchBody(SampleBatch());
  body.push_back('\x00');
  auto decoded = DecodeShardBatchBody(body);
  ASSERT_FALSE(decoded);
  EXPECT_NE(decoded.status().message().find("trailing"), std::string::npos);
}

TEST(ShardCodecTest, BatchRejectsUnknownKind) {
  std::string body = EncodeShardBatchBody(SampleBatch());
  body[4] = '\x44';  // first request's kind byte
  auto decoded = DecodeShardBatchBody(body);
  ASSERT_FALSE(decoded);
  EXPECT_NE(decoded.status().message().find("unknown query kind"),
            std::string::npos);
}

TEST(ShardCodecTest, BatchRejectsAdversarialCount) {
  // A count claiming ~2^32 requests in a 4-byte body must be rejected
  // before any allocation, not after a wrapped size check.
  const std::string body(4, '\xff');
  auto decoded = DecodeShardBatchBody(body);
  ASSERT_FALSE(decoded);
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

std::vector<QueryResult> SamplePartials() {
  std::vector<QueryResult> results;
  QueryResult r;
  r.kind = QueryKind::kNeighbors;
  r.neighbors = {3, 1, 4, 1, 5};
  results.push_back(r);
  r = {};
  r.kind = QueryKind::kHop;
  r.hops = {0, 1, 2, std::numeric_limits<uint32_t>::max()};
  results.push_back(r);
  r = {};
  r.kind = QueryKind::kRwr;
  // Bit-pattern corner cases: -0.0, a denormal, inf, and a quiet NaN
  // must all survive the wire exactly.
  r.scores = {0.25, -0.0, 5e-324, std::numeric_limits<double>::infinity(),
              std::numeric_limits<double>::quiet_NaN()};
  results.push_back(r);
  r = {};
  r.kind = QueryKind::kDegree;
  results.push_back(r);  // all payloads empty
  return results;
}

TEST(ShardCodecTest, PartialRoundTripIsBitExact) {
  const auto results = SamplePartials();
  const uint64_t epoch = 0x0123456789abcdefULL;
  auto decoded =
      DecodeShardPartialBody(EncodeShardPartialBody(epoch, results));
  ASSERT_TRUE(decoded) << decoded.status().ToString();
  EXPECT_EQ(decoded->epoch, epoch);
  ASSERT_EQ(decoded->results.size(), results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(decoded->results[i].kind, results[i].kind) << i;
    EXPECT_EQ(decoded->results[i].neighbors, results[i].neighbors) << i;
    EXPECT_EQ(decoded->results[i].hops, results[i].hops) << i;
    ASSERT_EQ(decoded->results[i].scores.size(), results[i].scores.size())
        << i;
    for (size_t j = 0; j < results[i].scores.size(); ++j) {
      // Compare bit patterns, not values: NaN != NaN but its bits carry.
      EXPECT_EQ(std::bit_cast<uint64_t>(decoded->results[i].scores[j]),
                std::bit_cast<uint64_t>(results[i].scores[j]))
          << i << "," << j;
    }
  }
}

TEST(ShardCodecTest, PartialRejectsTruncationAtEveryLength) {
  const std::string body = EncodeShardPartialBody(9, SamplePartials());
  for (size_t len = 0; len < body.size(); ++len) {
    auto decoded = DecodeShardPartialBody(body.substr(0, len));
    EXPECT_FALSE(decoded) << "accepted a " << len << "-byte prefix";
  }
}

TEST(ShardCodecTest, PartialRejectsTrailingBytes) {
  std::string body = EncodeShardPartialBody(9, SamplePartials());
  body += "xx";
  auto decoded = DecodeShardPartialBody(body);
  ASSERT_FALSE(decoded);
  EXPECT_NE(decoded.status().message().find("trailing"), std::string::npos);
}

TEST(ShardCodecTest, PartialRejectsAdversarialVectorCount) {
  // One result whose neighbor count claims 2^61 entries: the divide-based
  // bound check must reject it instead of wrapping n * 4.
  std::string body;
  const auto put_u64 = [&body](uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      body.push_back(static_cast<char>((v >> shift) & 0xff));
    }
  };
  put_u64(1);  // epoch
  for (int i = 0; i < 4; ++i) body.push_back(i == 0 ? '\x01' : '\x00');
  body.push_back('\x00');  // kind = kNeighbors
  put_u64(1ULL << 61);     // neighbor count
  auto decoded = DecodeShardPartialBody(body);
  ASSERT_FALSE(decoded);
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pegasus::serve
