// Parameterized property sweeps for the full PeGaSus pipeline across graph
// families and budgets: budget compliance, partition validity, superedge
// sanity, determinism, and cost monotonicity must hold for every
// combination.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/core/pegasus.h"
#include "src/core/personal_weights.h"
#include "src/eval/error_eval.h"
#include "src/graph/generators.h"

namespace pegasus {
namespace {

enum class Family { kBa, kBaTails, kWs, kEr, kPlanted, kRing, kGrid };

Graph MakeFamilyGraph(Family family, uint64_t seed) {
  switch (family) {
    case Family::kBa:
      return GenerateBarabasiAlbert(300, 3, seed);
    case Family::kBaTails:
      return GenerateBarabasiAlbertTails(300, 4, 0.6, seed);
    case Family::kWs:
      return GenerateWattsStrogatz(300, 8, 0.05, seed);
    case Family::kEr:
      return GenerateErdosRenyi(300, 900, seed);
    case Family::kPlanted:
      return GeneratePlantedPartition(300, 10, 6.0, 1.0, seed);
    case Family::kRing:
      return GenerateCommunityRing(6, 50, 3, 6, seed, 0.5);
    case Family::kGrid:
      return GenerateCommunityGrid(3, 3, 34, 3, 6, seed, 0.5);
  }
  return {};
}

const char* FamilyName(Family family) {
  switch (family) {
    case Family::kBa:
      return "BA";
    case Family::kBaTails:
      return "BATails";
    case Family::kWs:
      return "WS";
    case Family::kEr:
      return "ER";
    case Family::kPlanted:
      return "Planted";
    case Family::kRing:
      return "Ring";
    case Family::kGrid:
      return "Grid";
  }
  return "?";
}

class PipelineSweepTest
    : public ::testing::TestWithParam<std::tuple<Family, double>> {};

TEST_P(PipelineSweepTest, BudgetPartitionAndDeterminism) {
  const auto [family, ratio] = GetParam();
  Graph g = MakeFamilyGraph(family, 77);
  PegasusConfig config;
  config.seed = 13;
  config.max_iterations = 10;
  auto r1 = *SummarizeGraphToRatio(g, {0, 1}, ratio, config);
  auto r2 = *SummarizeGraphToRatio(g, {0, 1}, ratio, config);

  // Budget compliance.
  EXPECT_LE(r1.final_size_bits, ratio * g.SizeInBits() + 1e-9);
  // Partition validity.
  std::vector<uint32_t> seen(g.num_nodes(), 0);
  for (SupernodeId a : r1.summary.ActiveSupernodes()) {
    EXPECT_FALSE(r1.summary.members(a).empty());
    for (NodeId u : r1.summary.members(a)) {
      EXPECT_EQ(r1.summary.supernode_of(u), a);
      ++seen[u];
    }
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) ASSERT_EQ(seen[u], 1u);
  // Superedges only join alive supernodes and carry positive weights.
  for (SupernodeId a : r1.summary.ActiveSupernodes()) {
    for (const auto& [b, w] : r1.summary.superedges(a)) {
      EXPECT_TRUE(r1.summary.alive(b));
      EXPECT_GE(w, 1u);
      // Symmetric storage.
      EXPECT_EQ(r1.summary.SuperedgeWeight(b, a), w);
    }
  }
  // Determinism.
  EXPECT_DOUBLE_EQ(r1.final_size_bits, r2.final_size_bits);
  EXPECT_EQ(r1.summary.num_supernodes(), r2.summary.num_supernodes());
  EXPECT_EQ(r1.summary.num_superedges(), r2.summary.num_superedges());
}

INSTANTIATE_TEST_SUITE_P(
    Families, PipelineSweepTest,
    ::testing::Combine(::testing::Values(Family::kBa, Family::kBaTails,
                                         Family::kWs, Family::kEr,
                                         Family::kPlanted, Family::kRing,
                                         Family::kGrid),
                       ::testing::Values(0.15, 0.45, 0.85)),
    [](const auto& info) {
      return std::string(FamilyName(std::get<0>(info.param))) + "_r" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

// Size-accounting invariant: Eq. (3) recomputed from scratch matches the
// incrementally maintained SizeInBits after a full summarization run.
class SizeInvariantTest : public ::testing::TestWithParam<Family> {};

TEST_P(SizeInvariantTest, IncrementalSizeMatchesRecount) {
  Graph g = MakeFamilyGraph(GetParam(), 99);
  auto result = *SummarizeGraphToRatio(g, {2}, 0.4);
  const SummaryGraph& s = result.summary;
  uint64_t superedges = 0;
  uint32_t supernodes = 0;
  for (SupernodeId a : s.ActiveSupernodes()) {
    ++supernodes;
    for (const auto& [b, w] : s.superedges(a)) {
      (void)w;
      if (b >= a) ++superedges;
    }
  }
  EXPECT_EQ(supernodes, s.num_supernodes());
  EXPECT_EQ(superedges, s.num_superedges());
  const double bits = supernodes <= 1 ? 0.0 : std::log2(supernodes);
  EXPECT_NEAR(s.SizeInBits(),
              2.0 * superedges * bits + g.num_nodes() * bits, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Families, SizeInvariantTest,
                         ::testing::Values(Family::kBa, Family::kWs,
                                           Family::kRing),
                         [](const auto& info) {
                           return FamilyName(info.param);
                         });

// Forced-coarsening endgame: even absurdly tight budgets are met whenever
// they exceed zero supernode-membership bits (i.e., any budget is met once
// |S| can shrink to 1, whose size is 0).
TEST(PipelinePropertyTest, ExtremeBudgetsAlwaysMet) {
  Graph g = GenerateBarabasiAlbert(200, 3, 55);
  for (double ratio : {0.02, 0.05, 0.1}) {
    auto result = *SummarizeGraphToRatio(g, {0}, ratio);
    EXPECT_LE(result.final_size_bits, ratio * g.SizeInBits() + 1e-9)
        << "ratio " << ratio;
  }
}

// Personalized error never beats the exhaustive information limit: a
// summary of fewer bits cannot have negative error, and the error at full
// budget stays 0-bounded.
TEST(PipelinePropertyTest, ErrorsNonNegativeAcrossBudgets) {
  Graph g = GenerateCommunityRing(5, 40, 3, 6, 7, 0.5);
  auto w = PersonalWeights::Compute(g, {0}, 1.5);
  for (double ratio : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    auto result = *SummarizeGraphToRatio(g, {0}, ratio);
    EXPECT_GE(PersonalizedError(g, result.summary, w), 0.0);
  }
}

}  // namespace
}  // namespace pegasus
