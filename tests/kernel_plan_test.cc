// KernelPlan tests: the precomputed transition arrays behind the fused
// iterative kernels (src/core/kernel_plan.h). The load-bearing pins:
//
//   * plan invariants — the compacted CSR is exactly the layout CSR with
//     self slots split out, rows stay ascending, and the verified gates
//     (well_formed / symmetric / uniform_uw) hold on every summary the
//     builder can produce;
//   * fused == reference, bit for bit — every iterative family, weighted
//     and unweighted, on a self-loop-free summary AND on one with self
//     superedges (the segmented-PHP and hoisted-self-rate paths);
//   * built-vs-arena plan equality — a PSB1 round trip derives the same
//     plan at attach time that the built view derived at construction;
//   * scratch reuse — a KernelScratch recycled across queries of
//     different families and sizes never changes an answer byte;
//   * iteration-option edge cases — degenerate max_iterations/tolerance
//     are rejected by canonicalization, tolerance = 0 is sanctioned, and
//     a tolerance early-exit lands on exactly the bytes of some
//     fixed-iteration run (the exit changes when you stop, never what a
//     sweep computes).

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/core/binary_summary_io.h"
#include "src/core/kernel_plan.h"
#include "src/core/summary_arena.h"
#include "src/core/summary_graph.h"
#include "src/query/kernel_scratch.h"
#include "src/query/query_engine.h"
#include "src/query/summary_view.h"
#include "src/util/status.h"
#include "tests/test_util.h"

namespace pegasus {
namespace {

using ::pegasus::testing::HashScores;
using ::pegasus::testing::QueryGoldenGraph;
using ::pegasus::testing::QueryGoldenSummary;
using ::pegasus::testing::TwoCliquesGraph;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// The repo-wide golden fixture (BA graph, ratio-0.4 summary). Its
// summary happens to carry no self superedges, which makes it the
// clean-CSR case; SelfLoopSummary below covers the other one.
std::unique_ptr<SummaryView> GoldenView() {
  const Graph g = QueryGoldenGraph();
  return std::make_unique<SummaryView>(QueryGoldenSummary(g));
}

// Two 4-cliques bridged by one edge, grouped clique-per-supernode: both
// supernodes keep a self superedge (their internal clique edges), so the
// plan's self_split / self_den / self_rate paths are all live.
SummaryGraph SelfLoopSummary() {
  const Graph g = TwoCliquesGraph(4);
  std::vector<NodeId> labels(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) labels[u] = u < 4 ? 0 : 1;
  SummaryGraph summary = SummaryGraph::FromPartition(g, labels);
  summary.SetSuperedge(0, 0, 6);  // C(4,2) internal edges per clique
  summary.SetSuperedge(1, 1, 6);
  summary.SetSuperedge(0, 1, 1);  // the bridge
  return summary;
}

// Bitwise score equality: value == hides nothing here (scores are never
// NaN), but the FNV bit-pattern hash is the same oracle the goldens use,
// so assert through it as well.
void ExpectSameBits(const std::vector<double>& got,
                    const std::vector<double>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(got[i]), std::bit_cast<uint64_t>(want[i]))
        << what << " diverges at node " << i;
  }
  EXPECT_EQ(HashScores(got), HashScores(want)) << what;
}

// --- Plan invariants -------------------------------------------------------

void ExpectPlanMatchesLayout(const KernelPlan& plan,
                             const SummaryLayout& layout) {
  const uint32_t rows = static_cast<uint32_t>(layout.num_supernodes);
  ASSERT_EQ(plan.num_rows(), rows);
  ASSERT_EQ(plan.row_begin.size(), rows + 1);
  ASSERT_EQ(plan.self_split.size(), rows);
  ASSERT_EQ(plan.self_den_w.size(), rows);
  ASSERT_EQ(plan.self_rate_w.size(), rows);
  ASSERT_EQ(plan.self_rate_uw.size(), rows);

  uint64_t self_slots = 0;
  for (uint32_t b = 0; b < rows; ++b) {
    // Reconstruct the layout row from the compacted row plus the split:
    // slots [begin, begin + split) precede the self slot, the rest follow.
    const uint64_t begin = plan.row_begin[b];
    const uint64_t end = plan.row_begin[b + 1];
    const bool has_self = plan.self_split[b] != KernelPlan::kNoSelf;
    if (has_self) ++self_slots;
    const uint64_t lbegin = layout.edge_begin[b];
    const uint64_t lend = layout.edge_begin[b + 1];
    ASSERT_EQ((end - begin) + (has_self ? 1 : 0), lend - lbegin) << b;

    uint64_t li = lbegin;
    uint32_t prev = 0;
    bool first = true;
    for (uint64_t i = begin; i <= end; ++i) {
      if (has_self && i - begin == plan.self_split[b]) {
        EXPECT_EQ(layout.edge_dst[li], b) << b;
        EXPECT_EQ(std::bit_cast<uint64_t>(plan.self_den_w[b]),
                  std::bit_cast<uint64_t>(layout.edge_density_w[li]))
            << b;
        ++li;
      }
      if (i == end) break;
      EXPECT_NE(plan.dst[i], b) << "self slot left in compacted row " << b;
      EXPECT_EQ(plan.dst[i], layout.edge_dst[li]) << b;
      EXPECT_EQ(std::bit_cast<uint64_t>(plan.den_w[i]),
                std::bit_cast<uint64_t>(layout.edge_density_w[li]))
          << b;
      if (!first) {
        EXPECT_LT(prev, plan.dst[i]) << b;  // ascending, no dups
      }
      prev = plan.dst[i];
      first = false;
      ++li;
    }
    EXPECT_EQ(li, lend) << b;

    // Hoisted self rate: the reference guard, frozen.
    const double sd_w = layout.self_density_w[b];
    const double md_w = layout.member_deg_w[b];
    const double want_w = sd_w > 0.0 && md_w > 0.0 ? sd_w / md_w : 0.0;
    EXPECT_EQ(std::bit_cast<uint64_t>(plan.self_rate_w[b]),
              std::bit_cast<uint64_t>(want_w))
        << b;
    const double sd_uw = layout.self_density_uw[b];
    const double md_uw = layout.member_deg_uw[b];
    const double want_uw = sd_uw > 0.0 && md_uw > 0.0 ? sd_uw / md_uw : 0.0;
    EXPECT_EQ(std::bit_cast<uint64_t>(plan.self_rate_uw[b]),
              std::bit_cast<uint64_t>(want_uw))
        << b;
  }
  EXPECT_EQ(plan.dst.size() + self_slots, layout.num_edge_slots);
}

TEST(KernelPlanTest, GoldenFixturePlanIsFullyGated) {
  auto view = GoldenView();
  const KernelPlan& plan = view->kernel_plan();
  EXPECT_TRUE(plan.well_formed);
  EXPECT_TRUE(plan.symmetric);
  EXPECT_TRUE(plan.uniform_uw);
  EXPECT_TRUE(plan.GatherOk(true));
  EXPECT_TRUE(plan.GatherOk(false));
  EXPECT_TRUE(plan.SegmentedOk(true));
  EXPECT_TRUE(plan.SegmentedOk(false));
  ExpectPlanMatchesLayout(plan, view->layout());

  // This fixture is the self-loop-free case; keep that explicit so a
  // fixture change doesn't silently stop covering it.
  for (uint32_t b = 0; b < plan.num_rows(); ++b) {
    EXPECT_EQ(plan.self_split[b], KernelPlan::kNoSelf) << b;
  }
}

TEST(KernelPlanTest, SelfLoopSummaryPlanSplitsSelfSlots) {
  const SummaryGraph summary = SelfLoopSummary();
  SummaryView view(summary);
  const KernelPlan& plan = view.kernel_plan();
  EXPECT_TRUE(plan.well_formed);
  EXPECT_TRUE(plan.symmetric);
  EXPECT_TRUE(plan.uniform_uw);
  ExpectPlanMatchesLayout(plan, view.layout());

  ASSERT_EQ(plan.num_rows(), 2u);
  for (uint32_t b = 0; b < 2; ++b) {
    EXPECT_NE(plan.self_split[b], KernelPlan::kNoSelf) << b;
    EXPECT_GT(plan.self_den_w[b], 0.0) << b;
    EXPECT_GT(plan.self_rate_w[b], 0.0) << b;
    EXPECT_GT(plan.self_rate_uw[b], 0.0) << b;
  }
}

// --- Fused == reference, bit for bit ---------------------------------------

void ExpectFusedMatchesReference(const SummaryView& view) {
  const IterativeQueryOptions opts;
  const NodeId probes[] = {0, 1, view.num_nodes() / 2,
                           view.num_nodes() - 1};
  for (bool weighted : {true, false}) {
    for (NodeId q : probes) {
      ExpectSameBits(SummaryRwrScores(view, q, 0.05, weighted, opts),
                     SummaryRwrScoresReference(view, q, 0.05, weighted, opts),
                     weighted ? "rwr/w" : "rwr/uw");
      ExpectSameBits(SummaryPhpScores(view, q, 0.95, weighted, opts),
                     SummaryPhpScoresReference(view, q, 0.95, weighted, opts),
                     weighted ? "php/w" : "php/uw");
    }
    ExpectSameBits(SummaryPageRank(view, 0.85, weighted, opts),
                   SummaryPageRankReference(view, 0.85, weighted, opts),
                   weighted ? "pagerank/w" : "pagerank/uw");
  }
}

TEST(KernelPlanTest, FusedKernelsMatchReferenceOnGoldenFixture) {
  auto view = GoldenView();
  ExpectFusedMatchesReference(*view);
}

TEST(KernelPlanTest, FusedKernelsMatchReferenceWithSelfSuperedges) {
  const SummaryGraph summary = SelfLoopSummary();
  SummaryView view(summary);
  // Sanity: the fused paths must actually be live here, or this test
  // would silently compare the reference against itself.
  ASSERT_TRUE(view.kernel_plan().GatherOk(true));
  ASSERT_TRUE(view.kernel_plan().SegmentedOk(true));
  ExpectFusedMatchesReference(view);
}

// --- Built vs arena --------------------------------------------------------

TEST(KernelPlanTest, ArenaAttachDerivesTheBuiltPlan) {
  const std::string path = TempPath("kernel_plan_golden.psb");
  auto built = GoldenView();
  ASSERT_TRUE(SaveSummaryBinary(built->layout(), path, {}));

  auto arena = SummaryArena::Map(path);
  ASSERT_TRUE(arena) << arena.status().ToString();
  // The arena derives the plan once at attach; every view over it
  // shares that object.
  ASSERT_NE((*arena)->kernel_plan(), nullptr);
  SummaryView mapped(*arena);
  EXPECT_EQ(&mapped.kernel_plan(), (*arena)->kernel_plan().get());

  const KernelPlan& a = built->kernel_plan();
  const KernelPlan& b = mapped.kernel_plan();
  EXPECT_EQ(a.well_formed, b.well_formed);
  EXPECT_EQ(a.symmetric, b.symmetric);
  EXPECT_EQ(a.uniform_uw, b.uniform_uw);
  EXPECT_EQ(a.row_begin, b.row_begin);
  EXPECT_EQ(a.dst, b.dst);
  EXPECT_EQ(a.self_split, b.self_split);
  ASSERT_EQ(a.den_w.size(), b.den_w.size());
  for (size_t i = 0; i < a.den_w.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(a.den_w[i]),
              std::bit_cast<uint64_t>(b.den_w[i]))
        << i;
  }
  EXPECT_EQ(HashScores(a.self_den_w), HashScores(b.self_den_w));
  EXPECT_EQ(HashScores(a.self_rate_w), HashScores(b.self_rate_w));
  EXPECT_EQ(HashScores(a.self_rate_uw), HashScores(b.self_rate_uw));

  // And the kernels agree across backings (same bytes, fused path live
  // on both).
  ExpectSameBits(SummaryRwrScores(mapped, 5), SummaryRwrScores(*built, 5),
                 "rwr built-vs-arena");
  ExpectSameBits(SummaryPageRank(mapped), SummaryPageRank(*built),
                 "pagerank built-vs-arena");
}

TEST(KernelPlanTest, ArenaAttachHandlesSelfSuperedges) {
  const std::string path = TempPath("kernel_plan_selfloop.psb");
  const SummaryGraph summary = SelfLoopSummary();
  SummaryView built(summary);
  ASSERT_TRUE(SaveSummaryBinary(built.layout(), path, {}));

  auto arena = SummaryArena::Map(path);
  ASSERT_TRUE(arena) << arena.status().ToString();
  SummaryView mapped(*arena);
  EXPECT_EQ(mapped.kernel_plan().self_split, built.kernel_plan().self_split);
  ASSERT_TRUE(mapped.kernel_plan().SegmentedOk(true));
  ExpectSameBits(SummaryPhpScores(mapped, 2), SummaryPhpScores(built, 2),
                 "php built-vs-arena with self slots");
}

// --- Scratch reuse ---------------------------------------------------------

TEST(KernelPlanTest, ScratchReuseNeverChangesAnswerBytes) {
  auto golden = GoldenView();
  const SummaryGraph small_summary = SelfLoopSummary();
  SummaryView small(small_summary);

  KernelScratch scratch;  // one scratch, recycled across everything below
  const IterativeQueryOptions opts;
  for (int round = 0; round < 2; ++round) {
    ExpectSameBits(SummaryRwrScores(*golden, 5, 0.05, true, opts, &scratch),
                   SummaryRwrScores(*golden, 5, 0.05, true, opts),
                   "rwr with reused scratch");
    // Shrink to the small fixture mid-stream: buffers stay at the large
    // high-water size, extra slots must not leak into the answer.
    ExpectSameBits(SummaryPhpScores(small, 2, 0.95, false, opts, &scratch),
                   SummaryPhpScores(small, 2, 0.95, false, opts),
                   "php with oversized scratch");
    ExpectSameBits(SummaryPageRank(*golden, 0.85, false, opts, &scratch),
                   SummaryPageRank(*golden, 0.85, false, opts),
                   "pagerank with reused scratch");
  }
}

TEST(KernelPlanTest, ScratchPoolLeasesAreExclusiveAndRecycled) {
  KernelScratchPool pool;
  KernelScratch* first = nullptr;
  {
    const KernelScratchPool::Lease a = pool.Acquire();
    const KernelScratchPool::Lease b = pool.Acquire();
    ASSERT_NE(a.get(), nullptr);
    ASSERT_NE(b.get(), nullptr);
    EXPECT_NE(a.get(), b.get());  // concurrent leases never alias
    first = a.get();
    a.get()->Reserve(64);
  }
  // Returned scratches are reused (grown buffers and all), not leaked or
  // reallocated.
  const KernelScratchPool::Lease again = pool.Acquire();
  const KernelScratchPool::Lease other = pool.Acquire();
  const bool recycled = again.get() == first || other.get() == first;
  EXPECT_TRUE(recycled);
}

// --- Iteration-option edge cases (CanonicalizeRequest) ---------------------

QueryRequest RwrRequest(int max_iterations, double tolerance) {
  QueryRequest r;
  r.kind = QueryKind::kRwr;
  r.node = 5;
  r.opts.max_iterations = max_iterations;
  r.opts.tolerance = tolerance;
  return r;
}

TEST(IterativeOptionsTest, RejectsDegenerateIterationCounts) {
  auto zero = CanonicalizeRequest(RwrRequest(0, 1e-10), 200);
  ASSERT_FALSE(zero.ok());
  EXPECT_EQ(zero.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(zero.status().message().find("max_iterations"), std::string::npos);

  auto negative = CanonicalizeRequest(RwrRequest(-3, 1e-10), 200);
  ASSERT_FALSE(negative.ok());
  EXPECT_EQ(negative.status().code(), StatusCode::kInvalidArgument);
}

TEST(IterativeOptionsTest, RejectsNegativeOrNanToleranceAllowsZero) {
  auto negative = CanonicalizeRequest(RwrRequest(100, -1e-12), 200);
  ASSERT_FALSE(negative.ok());
  EXPECT_EQ(negative.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(negative.status().message().find("tolerance"), std::string::npos);

  auto nan = CanonicalizeRequest(
      RwrRequest(100, std::numeric_limits<double>::quiet_NaN()), 200);
  ASSERT_FALSE(nan.ok());
  EXPECT_EQ(nan.status().code(), StatusCode::kInvalidArgument);

  // tolerance = 0 is the sanctioned "never exit early" setting.
  auto zero = CanonicalizeRequest(RwrRequest(100, 0.0), 200);
  ASSERT_TRUE(zero.ok()) << zero.status().ToString();
  EXPECT_EQ(zero->opts.tolerance, 0.0);
}

TEST(IterativeOptionsTest, NonIterativeFamiliesIgnoreIterationOptions) {
  QueryRequest r;
  r.kind = QueryKind::kDegree;
  r.opts.max_iterations = 0;  // would be rejected on an iterative family
  r.opts.tolerance = -5.0;
  auto canon = CanonicalizeRequest(r, 200);
  ASSERT_TRUE(canon.ok()) << canon.status().ToString();
  EXPECT_EQ(canon->opts.max_iterations, IterativeQueryOptions{}.max_iterations);
  EXPECT_EQ(canon->opts.tolerance, IterativeQueryOptions{}.tolerance);
}

// The tolerance exit only decides WHEN to stop sweeping — the scores it
// returns are exactly those of the fixed-iteration run that stops at the
// same sweep. Scan for that sweep count and pin the equivalence, for
// each iterative family. Per-sweep change decays roughly like the
// family's continuation mass, so the default parameters (0.95/0.85)
// cannot reach 1e-10 inside 100 sweeps — run at 0.5, where convergence
// lands around sweep 35 and the early exit is genuinely exercised.
TEST(IterativeOptionsTest, ToleranceExitEqualsSomeFixedIterationRun) {
  auto view = GoldenView();
  const double kParam = 0.5;       // rwr restart / php decay / pr damping
  IterativeQueryOptions tolerant;  // defaults: 100 sweeps, 1e-10
  IterativeQueryOptions exhaustive;
  exhaustive.tolerance = 0.0;  // change < 0 never holds: no early exit

  const auto find_equivalent_k = [&](const std::vector<double>& converged,
                                     auto&& run_fixed) {
    for (int k = 1; k <= tolerant.max_iterations; ++k) {
      exhaustive.max_iterations = k;
      if (HashScores(run_fixed(exhaustive)) == HashScores(converged)) {
        return k;
      }
    }
    return -1;
  };

  const std::vector<double> rwr = SummaryRwrScores(*view, 5, kParam, true,
                                                   tolerant);
  const int rwr_k = find_equivalent_k(rwr, [&](const auto& o) {
    return SummaryRwrScores(*view, 5, kParam, true, o);
  });
  ASSERT_GT(rwr_k, 0) << "rwr tolerance exit matches no fixed-sweep run";
  EXPECT_LT(rwr_k, tolerant.max_iterations) << "rwr never converged early";

  const std::vector<double> php = SummaryPhpScores(*view, 5, kParam, true,
                                                   tolerant);
  const int php_k = find_equivalent_k(php, [&](const auto& o) {
    return SummaryPhpScores(*view, 5, kParam, true, o);
  });
  ASSERT_GT(php_k, 0) << "php tolerance exit matches no fixed-sweep run";
  EXPECT_LT(php_k, tolerant.max_iterations) << "php never converged early";

  const std::vector<double> pr = SummaryPageRank(*view, kParam, true, tolerant);
  const int pr_k = find_equivalent_k(pr, [&](const auto& o) {
    return SummaryPageRank(*view, kParam, true, o);
  });
  ASSERT_GT(pr_k, 0) << "pagerank tolerance exit matches no fixed-sweep run";
  EXPECT_LT(pr_k, tolerant.max_iterations) << "pagerank never converged early";
}

}  // namespace
}  // namespace pegasus
