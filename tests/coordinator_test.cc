// Coordinator tests: the sharded serving stack end to end over real
// loopback sockets. The load-bearing pins:
//
//   * 1-shard byte-identity — a coordinator over a single-shard manifest
//     of the query-golden summary reproduces the checked-in golden hash
//     for all seven query families (tests/test_util.h), i.e. sharded
//     serving at N=1 is indistinguishable from `pegasus serve`.
//   * Merge determinism — multi-shard answers are byte-identical across
//     worker thread counts, repeated batches, and fresh connections.
//   * Merge correctness — the scatter-gather answer equals an in-process
//     recomputation: owner's bytes for node-local families, ownership-
//     stitched scores for scored families.
//   * Routing — node-local requests touch only the owning shard.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/binary_summary_io.h"
#include "src/query/summary_view.h"
#include "src/serve/query_service.h"
#include "src/shard/coordinator.h"
#include "src/shard/manifest.h"
#include "src/shard/shard_build.h"
#include "src/shard/worker.h"
#include "src/util/status.h"
#include "tests/test_util.h"

namespace pegasus::shard {
namespace {

using ::pegasus::testing::HashQueryResult;
using ::pegasus::testing::QueryGoldenCases;
using ::pegasus::testing::QueryGoldenGraph;
using ::pegasus::testing::QueryGoldenSummary;

std::vector<QueryRequest> GoldenBatch() {
  std::vector<QueryRequest> requests;
  for (const auto& c : QueryGoldenCases()) requests.push_back(c.request);
  return requests;
}

// Writes the query-golden summary as a 1-shard manifest + PSB, so the
// coordinator serves exactly the summary the golden hashes were pinned
// against. Built by hand (not ShardBuild) because the golden fixture
// uses its own summarizer seed.
std::string WriteGoldenSingleShard(const std::string& dir_name) {
  const std::string dir = ::testing::TempDir() + "/" + dir_name;
  ::mkdir(dir.c_str(), 0755);
  const Graph graph = QueryGoldenGraph();
  const SummaryGraph summary = QueryGoldenSummary(graph);
  const std::string psb = dir + "/shard_000.psb";
  SummaryView view(summary);
  if (!SaveSummaryBinary(view.layout(), psb, {})) return "";
  auto checksum = ChecksumFile(psb);
  if (!checksum) return "";

  ShardManifest manifest;
  manifest.num_shards = 1;
  manifest.num_nodes = graph.num_nodes();
  manifest.partitioner = "random";
  manifest.shards = {{"shard_000.psb", *checksum}};
  manifest.node_shard.assign(graph.num_nodes(), 0);
  const std::string path = dir + "/" + kManifestFileName;
  if (!SaveManifest(manifest, path)) return "";
  return path;
}

// One in-process worker fleet + coordinator over a manifest on disk.
struct Fleet {
  std::vector<std::unique_ptr<ShardWorker>> workers;
  std::unique_ptr<Coordinator> coordinator;
};

StatusOr<Fleet> StartFleet(const std::string& manifest_path,
                           const std::vector<int>& worker_threads) {
  auto manifest = LoadManifest(manifest_path);
  if (!manifest) return manifest.status();
  Fleet fleet;
  std::vector<uint16_t> ports;
  for (uint32_t s = 0; s < manifest->num_shards; ++s) {
    ShardWorker::Options options;
    options.service.num_threads =
        worker_threads.empty() ? 1 : worker_threads[s % worker_threads.size()];
    auto worker = ShardWorker::Start(manifest_path, s, options);
    if (!worker) return worker.status();
    ports.push_back((*worker)->port());
    fleet.workers.push_back(std::move(*worker));
  }
  auto coordinator = Coordinator::Connect(*std::move(manifest), ports);
  if (!coordinator) return coordinator.status();
  fleet.coordinator = std::move(*coordinator);
  return fleet;
}

// The multi-shard fixture: a 3-shard random-partitioned build of the
// golden graph, written once per process and shared by the multi-shard
// tests. The directory is pid-suffixed because gtest_discover_tests runs
// every TEST() as its own ctest entry (own process), and `ctest -j` can
// run two of them concurrently — a shared directory would let one
// process checksum a shard PSB while another is still writing it.
const std::string& MultiShardManifestPath() {
  static const std::string path = [] {
    const std::string dir = ::testing::TempDir() + "/coord_multi_" +
                            std::to_string(::getpid());
    ShardBuildOptions options;
    options.num_shards = 3;
    options.partitioner = PartitionerKind::kRandom;
    options.ratio = 0.4;
    options.config.seed = 7;
    auto result = ShardBuild(QueryGoldenGraph(), dir, options);
    return result ? result->manifest_path : std::string();
  }();
  return path;
}

TEST(CoordinatorTest, SingleShardReproducesGoldenHashes) {
  const std::string manifest_path =
      WriteGoldenSingleShard("coord_golden_single");
  ASSERT_FALSE(manifest_path.empty());
  auto fleet = StartFleet(manifest_path, {2});
  ASSERT_TRUE(fleet) << fleet.status().ToString();

  // All twelve cases in one batch: every family crosses the wire, and
  // each answer's hash must equal the checked-in single-view golden.
  auto batch = fleet->coordinator->Answer(GoldenBatch());
  ASSERT_TRUE(batch) << batch.status().ToString();
  const auto cases = QueryGoldenCases();
  ASSERT_EQ(batch->results.size(), cases.size());
  for (size_t i = 0; i < cases.size(); ++i) {
    EXPECT_EQ(HashQueryResult(batch->results[i]), cases[i].hash)
        << cases[i].name;
  }

  // And one-request batches agree with the big batch.
  for (const auto& c : QueryGoldenCases()) {
    auto one = fleet->coordinator->Answer({c.request});
    ASSERT_TRUE(one) << c.name;
    ASSERT_EQ(one->results.size(), 1u);
    EXPECT_EQ(HashQueryResult(one->results[0]), c.hash) << c.name;
  }
}

TEST(CoordinatorTest, MultiShardAnswersAreInvariantToWorkersAndRepeats) {
  const std::string& manifest_path = MultiShardManifestPath();
  ASSERT_FALSE(manifest_path.empty());

  auto fleet_a = StartFleet(manifest_path, {1, 2, 4});
  ASSERT_TRUE(fleet_a) << fleet_a.status().ToString();
  auto first = fleet_a->coordinator->Answer(GoldenBatch());
  ASSERT_TRUE(first) << first.status().ToString();

  std::vector<uint64_t> golden;
  for (const auto& r : first->results) golden.push_back(HashQueryResult(r));

  // Same coordinator, second batch (cache-warm path on the workers).
  auto again = fleet_a->coordinator->Answer(GoldenBatch());
  ASSERT_TRUE(again);
  for (size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(HashQueryResult(again->results[i]), golden[i]) << i;
  }

  // Fresh fleet with permuted thread counts: identical bytes.
  auto fleet_b = StartFleet(manifest_path, {4, 1, 2});
  ASSERT_TRUE(fleet_b) << fleet_b.status().ToString();
  auto other = fleet_b->coordinator->Answer(GoldenBatch());
  ASSERT_TRUE(other);
  for (size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(HashQueryResult(other->results[i]), golden[i]) << i;
  }
}

TEST(CoordinatorTest, MergeMatchesInProcessRecomputation) {
  const std::string& manifest_path = MultiShardManifestPath();
  ASSERT_FALSE(manifest_path.empty());
  auto manifest = LoadManifest(manifest_path);
  ASSERT_TRUE(manifest);

  // Recompute every shard's partial directly from its PSB (serial
  // service, no sockets), then apply the documented merge rule.
  const std::string dir = ManifestDir(manifest_path);
  std::vector<std::unique_ptr<QueryService>> locals;
  std::vector<QueryService::BatchResult> partials;
  for (uint32_t s = 0; s < manifest->num_shards; ++s) {
    auto summary = LoadSummaryBinary(ShardPsbPath(*manifest, dir, s));
    ASSERT_TRUE(summary) << summary.status().ToString();
    QueryService::Options options;
    options.num_threads = 1;
    locals.push_back(std::make_unique<QueryService>(*summary, options));
    auto partial = locals.back()->Answer(GoldenBatch());
    ASSERT_TRUE(partial) << partial.status().ToString();
    partials.push_back(*std::move(partial));
  }

  auto fleet = StartFleet(manifest_path, {2});
  ASSERT_TRUE(fleet) << fleet.status().ToString();
  auto batch = fleet->coordinator->Answer(GoldenBatch());
  ASSERT_TRUE(batch) << batch.status().ToString();

  const auto cases = QueryGoldenCases();
  const auto requests = GoldenBatch();
  ASSERT_EQ(batch->results.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const QueryKind kind = requests[i].kind;
    if (kind == QueryKind::kNeighbors || kind == QueryKind::kHop) {
      // Node-local: the owner's answer, verbatim.
      const uint32_t owner = manifest->ShardOf(requests[i].node);
      EXPECT_EQ(HashQueryResult(batch->results[i]),
                HashQueryResult(partials[owner].results[i]))
          << cases[i].name;
    } else {
      // Scored: score[v] comes from v's owner.
      QueryResult expected;
      expected.kind = kind;
      expected.scores.resize(manifest->num_nodes);
      for (NodeId v = 0; v < manifest->num_nodes; ++v) {
        expected.scores[v] =
            partials[manifest->ShardOf(v)].results[i].scores[v];
      }
      EXPECT_EQ(HashQueryResult(batch->results[i]), HashQueryResult(expected))
          << cases[i].name;
    }
  }
}

TEST(CoordinatorTest, NodeLocalRequestsTouchOnlyTheOwningShard) {
  const std::string& manifest_path = MultiShardManifestPath();
  ASSERT_FALSE(manifest_path.empty());
  auto manifest = LoadManifest(manifest_path);
  ASSERT_TRUE(manifest);
  auto fleet = StartFleet(manifest_path, {1});
  ASSERT_TRUE(fleet) << fleet.status().ToString();

  QueryRequest r;
  r.kind = QueryKind::kNeighbors;
  r.node = 5;
  auto batch = fleet->coordinator->Answer({r});
  ASSERT_TRUE(batch);
  const uint32_t owner = manifest->ShardOf(5);
  for (uint32_t s = 0; s < manifest->num_shards; ++s) {
    if (s == owner) {
      EXPECT_GT(batch->shard_epochs[s], 0u) << s;
    } else {
      EXPECT_EQ(batch->shard_epochs[s], 0u) << s;  // never contacted
    }
  }

  // A scored request scatters everywhere.
  r.kind = QueryKind::kPageRank;
  r.node = 0;
  batch = fleet->coordinator->Answer({r});
  ASSERT_TRUE(batch);
  for (uint32_t s = 0; s < manifest->num_shards; ++s) {
    EXPECT_GT(batch->shard_epochs[s], 0u) << s;
  }
}

TEST(CoordinatorTest, GathersEpochsAndPerShardStats) {
  const std::string& manifest_path = MultiShardManifestPath();
  ASSERT_FALSE(manifest_path.empty());
  auto fleet = StartFleet(manifest_path, {1});
  ASSERT_TRUE(fleet) << fleet.status().ToString();

  auto epochs = fleet->coordinator->GatherEpochs();
  ASSERT_TRUE(epochs) << epochs.status().ToString();
  ASSERT_EQ(epochs->size(), 3u);
  for (uint64_t e : *epochs) EXPECT_EQ(e, 1u);  // workers publish once

  auto stats = fleet->coordinator->GatherStats();
  ASSERT_TRUE(stats) << stats.status().ToString();
  EXPECT_NE(stats->find("shard 0\n"), std::string::npos);
  EXPECT_NE(stats->find("shard 1\n"), std::string::npos);
  EXPECT_NE(stats->find("shard 2\n"), std::string::npos);
}

TEST(CoordinatorTest, RejectsBadConfigurations) {
  const std::string& manifest_path = MultiShardManifestPath();
  ASSERT_FALSE(manifest_path.empty());
  auto manifest = LoadManifest(manifest_path);
  ASSERT_TRUE(manifest);

  // Port count must match the shard count.
  auto short_fleet = Coordinator::Connect(*manifest, {1});
  EXPECT_EQ(short_fleet.status().code(), StatusCode::kInvalidArgument);

  // Bad shard index on the worker side.
  EXPECT_EQ(ShardWorker::Start(manifest_path, 99).status().code(),
            StatusCode::kOutOfRange);

  // Out-of-range node surfaces as the canonicalizer's error before
  // anything is sent to a worker.
  auto fleet = StartFleet(manifest_path, {1});
  ASSERT_TRUE(fleet) << fleet.status().ToString();
  QueryRequest r;
  r.kind = QueryKind::kNeighbors;
  r.node = 1000000;
  auto bad = fleet->coordinator->Answer({r});
  ASSERT_FALSE(bad);
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);

  // An empty batch is a no-op, not an error.
  auto empty = fleet->coordinator->Answer({});
  ASSERT_TRUE(empty);
  EXPECT_TRUE(empty->results.empty());
}

}  // namespace
}  // namespace pegasus::shard
