// Tests for the resident serving layer (src/serve/query_service.h).
//
// The contract under test (ISSUE 4):
//   * epoch semantics — Answer() before Publish() fails typed; every
//     batch is served entirely from one epoch's view even while Publish
//     swaps epochs concurrently;
//   * byte-identity — service answers match single-threaded AnswerQuery
//     calls against the served epoch's view for every thread count and
//     every cheap-grain, including under concurrent hammering (this suite
//     runs in the TSan CI job);
//   * global-result caching — whole-graph families are computed at most
//     once per (epoch, canonical parameterization) regardless of batch
//     composition;
//   * request validation — NaN/out-of-range parameters are rejected with
//     typed Status errors instead of the old silent defaulting.

#include "src/serve/query_service.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/dynamic_summary.h"
#include "src/core/pegasus.h"
#include "src/graph/generators.h"
#include "src/query/query_engine.h"
#include "src/query/summary_view.h"
#include "tests/test_util.h"

namespace pegasus {
namespace {

SummaryGraph MakeSummary(const Graph& g, double ratio,
                         std::vector<NodeId> targets = {}) {
  return SummarizeGraphToRatio(g, targets, ratio)->summary;
}

// A batch covering every family, with defaulted and explicit params.
std::vector<QueryRequest> ServiceBatch(NodeId num_nodes) {
  std::vector<QueryRequest> requests;
  for (NodeId q = 0; q < num_nodes; q += 9) {
    requests.push_back({QueryKind::kNeighbors, q, kQueryParamUseDefault,
                        true, {}});
    requests.push_back({QueryKind::kHop, q, kQueryParamUseDefault, true, {}});
    requests.push_back({QueryKind::kRwr, q, 0.1, true, {}});
    requests.push_back({QueryKind::kPhp, q, kQueryParamUseDefault,
                        false, {}});
  }
  requests.push_back(
      {QueryKind::kPageRank, 0, kQueryParamUseDefault, true, {}});
  requests.push_back({QueryKind::kPageRank, 0, 0.5, true, {}});
  requests.push_back({QueryKind::kDegree, 0, kQueryParamUseDefault,
                      true, {}});
  requests.push_back({QueryKind::kDegree, 0, kQueryParamUseDefault,
                      false, {}});
  requests.push_back({QueryKind::kClustering, 0, kQueryParamUseDefault,
                      false, {}});
  return requests;
}

// Single-threaded expected answers: canonicalize, then one AnswerQuery
// per request on the given view.
std::vector<QueryResult> Expected(const SummaryView& view,
                                  const std::vector<QueryRequest>& requests) {
  std::vector<QueryResult> out;
  for (const QueryRequest& request : requests) {
    auto canon = CanonicalizeRequest(request, view.num_nodes());
    EXPECT_TRUE(canon.ok()) << canon.status().ToString();
    out.push_back(AnswerQuery(view, *canon));
  }
  return out;
}

void ExpectSameResults(const std::vector<QueryResult>& got,
                       const std::vector<QueryResult>& want,
                       const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].kind, want[i].kind) << label << " i=" << i;
    EXPECT_EQ(got[i].neighbors, want[i].neighbors) << label << " i=" << i;
    EXPECT_EQ(got[i].hops, want[i].hops) << label << " i=" << i;
    EXPECT_EQ(got[i].scores, want[i].scores) << label << " i=" << i;
  }
}

TEST(QueryServiceTest, AnswerBeforePublishFailsTyped) {
  QueryService service;
  EXPECT_EQ(service.epoch(), 0u);
  EXPECT_EQ(service.view(), nullptr);
  const auto batch = service.Answer({{QueryKind::kDegree, 0,
                                      kQueryParamUseDefault, true, {}}});
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kFailedPrecondition);
  const auto one = service.AnswerOne({QueryKind::kDegree, 0,
                                      kQueryParamUseDefault, true, {}});
  ASSERT_FALSE(one.ok());
  EXPECT_EQ(one.status().code(), StatusCode::kFailedPrecondition);
}

TEST(QueryServiceTest, PublishBumpsEpochMonotonically) {
  Graph g = GenerateBarabasiAlbert(80, 2, 410);
  const SummaryGraph summary = MakeSummary(g, 0.5);
  QueryService service;
  EXPECT_EQ(service.Publish(summary), 1u);
  EXPECT_EQ(service.Publish(summary), 2u);
  EXPECT_EQ(service.epoch(), 2u);
  ASSERT_NE(service.view(), nullptr);
  EXPECT_EQ(service.view()->num_nodes(), g.num_nodes());

  // The convenience constructor publishes epoch 1.
  QueryService eager(summary);
  EXPECT_EQ(eager.epoch(), 1u);
}

TEST(QueryServiceTest, AnswersByteIdenticalToSingleThreadedReference) {
  Graph g = GenerateBarabasiAlbert(130, 3, 411);
  const SummaryGraph summary = MakeSummary(g, 0.5, {3});
  const SummaryView view(summary);
  const auto requests = ServiceBatch(g.num_nodes());
  const auto want = Expected(view, requests);

  for (int threads : {1, 2, 4, 8}) {
    for (size_t grain : {size_t{1}, size_t{3}, size_t{64}}) {
      QueryService service(summary,
                           {.num_threads = threads, .cheap_grain = grain});
      const auto got = service.Answer(requests);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got->epoch, 1u);
      ExpectSameResults(
          got->results, want,
          ("threads=" + std::to_string(threads) + " grain=" +
           std::to_string(grain))
              .c_str());
    }
  }
}

TEST(QueryServiceTest, AnswerOneMatchesBatchAndCaches) {
  Graph g = GenerateBarabasiAlbert(90, 2, 412);
  const SummaryGraph summary = MakeSummary(g, 0.6);
  QueryService service(summary, {.num_threads = 2});
  const auto requests = ServiceBatch(g.num_nodes());
  const auto batch = service.Answer(requests);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < requests.size(); ++i) {
    const auto one = service.AnswerOne(requests[i]);
    ASSERT_TRUE(one.ok()) << one.status().ToString();
    EXPECT_EQ(one->neighbors, batch->results[i].neighbors) << "i=" << i;
    EXPECT_EQ(one->hops, batch->results[i].hops) << "i=" << i;
    EXPECT_EQ(one->scores, batch->results[i].scores) << "i=" << i;
  }
}

TEST(QueryServiceTest, GlobalResultsComputedOncePerEpochPerParams) {
  Graph g = GenerateBarabasiAlbert(100, 3, 413);
  const SummaryGraph summary = MakeSummary(g, 0.5);
  QueryService service(summary, {.num_threads = 4});

  // 20 global requests, 4 distinct parameterizations: pagerank(default),
  // degree(weighted), degree(unweighted), clustering(unweighted).
  std::vector<QueryRequest> requests;
  for (int r = 0; r < 5; ++r) {
    requests.push_back(
        {QueryKind::kPageRank, 0, kQueryParamUseDefault, true, {}});
    requests.push_back(
        {QueryKind::kDegree, 0, kQueryParamUseDefault, true, {}});
    requests.push_back(
        {QueryKind::kDegree, 0, kQueryParamUseDefault, false, {}});
    requests.push_back(
        {QueryKind::kClustering, 0, kQueryParamUseDefault, false, {}});
  }

  ASSERT_TRUE(service.Answer(requests).ok());
  auto stats = service.cache_stats();
  EXPECT_EQ(stats.computations, 4u);

  // A second batch of the same parameterizations is all cache hits.
  ASSERT_TRUE(service.Answer(requests).ok());
  stats = service.cache_stats();
  EXPECT_EQ(stats.computations, 4u);
  EXPECT_EQ(stats.hits, 4u);

  // A new parameterization computes exactly once more.
  ASSERT_TRUE(service
                  .Answer({{QueryKind::kPageRank, 0, 0.5, true, {}},
                           {QueryKind::kPageRank, 0, 0.5, true, {}}})
                  .ok());
  EXPECT_EQ(service.cache_stats().computations, 5u);

  // A new epoch recomputes (the old epoch's entries are evicted).
  service.Publish(summary);
  ASSERT_TRUE(service.Answer(requests).ok());
  EXPECT_EQ(service.cache_stats().computations, 9u);

  // Repeated requests *within* one batch dedupe before touching the
  // cache, so answers are copies of one computation either way.
  const auto again = service.Answer(requests);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->results[0].scores, again->results[4].scores);
}

TEST(QueryServiceTest, InvalidRequestsRejectedTyped) {
  Graph g = GenerateBarabasiAlbert(60, 2, 414);
  const SummaryGraph summary = MakeSummary(g, 0.5);
  QueryService service(summary);
  const double nan = std::numeric_limits<double>::quiet_NaN();

  struct CaseT {
    QueryRequest request;
    StatusCode code;
  };
  const CaseT cases[] = {
      // NaN parameter.
      {{QueryKind::kRwr, 1, nan, true, {}}, StatusCode::kInvalidArgument},
      // param >= 1.
      {{QueryKind::kPageRank, 0, 1.0, true, {}},
       StatusCode::kInvalidArgument},
      // Negative non-sentinel param (the old code silently defaulted it).
      {{QueryKind::kPhp, 1, -0.5, true, {}}, StatusCode::kInvalidArgument},
      // Parameter on a parameterless family.
      {{QueryKind::kDegree, 0, 0.5, true, {}},
       StatusCode::kInvalidArgument},
      // Node out of range.
      {{QueryKind::kNeighbors, g.num_nodes(), kQueryParamUseDefault,
        true, {}},
       StatusCode::kOutOfRange},
      // Degenerate iteration options.
      {{QueryKind::kRwr, 1, 0.05, true, {.max_iterations = 0}},
       StatusCode::kInvalidArgument},
      {{QueryKind::kRwr, 1, 0.05, true,
        {.max_iterations = 10, .tolerance = -1.0}},
       StatusCode::kInvalidArgument},
  };
  for (size_t i = 0; i < std::size(cases); ++i) {
    const auto one = service.AnswerOne(cases[i].request);
    EXPECT_FALSE(one.ok()) << "case " << i;
    EXPECT_EQ(one.status().code(), cases[i].code) << "case " << i;
  }

  // Batch errors name the offending request index.
  const auto batch = service.Answer(
      {{QueryKind::kDegree, 0, kQueryParamUseDefault, true, {}},
       {QueryKind::kRwr, 1, nan, true, {}}});
  ASSERT_FALSE(batch.ok());
  EXPECT_NE(batch.status().message().find("request 1"), std::string::npos)
      << batch.status().message();

  // The sentinel and the explicit default are the same request.
  const auto defaulted = service.AnswerOne(
      {QueryKind::kRwr, 1, kQueryParamUseDefault, true, {}});
  const auto explicit_default =
      service.AnswerOne({QueryKind::kRwr, 1, 0.05, true, {}});
  ASSERT_TRUE(defaulted.ok() && explicit_default.ok());
  EXPECT_EQ(defaulted->scores, explicit_default->scores);
}

TEST(QueryServiceTest, AnswerBatchShimMatchesService) {
  Graph g = GenerateBarabasiAlbert(110, 2, 415);
  const SummaryGraph summary = MakeSummary(g, 0.5);
  const SummaryView view(summary);
  const auto requests = ServiceBatch(g.num_nodes());

  QueryService service(summary, {.num_threads = 4});
  const auto served = service.Answer(requests);
  ASSERT_TRUE(served.ok());
  const auto shimmed = AnswerBatch(view, requests, /*num_threads=*/4);
  ASSERT_TRUE(shimmed.ok()) << shimmed.status().ToString();
  ExpectSameResults(*shimmed, served->results, "shim");

  // The shim propagates validation errors too.
  const auto bad = AnswerBatch(
      view, {{QueryKind::kRwr, 0, 2.0, true, {}}}, /*num_threads=*/1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryServiceTest, PublishesDynamicSummaryRebuilds) {
  Graph g = GenerateBarabasiAlbert(100, 3, 416);
  DynamicSummary::Options options;
  options.ratio = 0.5;
  DynamicSummary dynamic = *DynamicSummary::Create(g, {}, options);

  QueryService service;
  EXPECT_EQ(service.Publish(dynamic), 1u);
  const SummaryView view1(dynamic.summary());
  const auto requests = ServiceBatch(g.num_nodes());
  const auto before = service.Answer(requests);
  ASSERT_TRUE(before.ok());
  ExpectSameResults(before->results, Expected(view1, requests), "epoch1");

  // Mutate, rebuild offline, republish: the service swaps epochs and
  // serves the rebuilt summary.
  for (NodeId u = 0; u + 7 < g.num_nodes(); u += 7) {
    dynamic.AddEdge(u, u + 7);
  }
  dynamic.Rebuild();
  EXPECT_EQ(service.Publish(dynamic), 2u);
  const SummaryView view2(dynamic.summary());
  const auto after = service.Answer(requests);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->epoch, 2u);
  ExpectSameResults(after->results, Expected(view2, requests), "epoch2");
}

// The serving path must reproduce the cross-stdlib goldens bit-for-bit:
// the same constants determinism_test asserts through a single-threaded
// SummaryView, served here through a multi-threaded QueryService batch
// (pool fan-out, global-result cache, cheap-grain chunking and all).
TEST(QueryServiceTest, ServedAnswersMatchCrossStdlibGoldens) {
  const Graph g = ::pegasus::testing::QueryGoldenGraph();
  const SummaryGraph summary = ::pegasus::testing::QueryGoldenSummary(g);
  const auto cases = ::pegasus::testing::QueryGoldenCases();
  std::vector<QueryRequest> requests;
  for (const auto& c : cases) requests.push_back(c.request);

  QueryService service(summary, {.num_threads = 4, .cheap_grain = 3});
  const auto batch = service.Answer(requests);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->results.size(), cases.size());
  for (size_t i = 0; i < cases.size(); ++i) {
    EXPECT_EQ(::pegasus::testing::HashQueryResult(batch->results[i]),
              cases[i].hash)
        << cases[i].name;
  }
}

// The global-result cache must not grow without bound within an epoch: a
// parameter-sweeping client stays within cache_capacity entries, with
// evictions counted, and an evicted parameterization is recomputed (not
// wrong) when it comes back.
TEST(QueryServiceTest, GlobalResultCacheIsBoundedWithLruEviction) {
  Graph g = GenerateBarabasiAlbert(80, 2, 418);
  const SummaryGraph summary = MakeSummary(g, 0.5);
  // Serial service: with >1 worker the ParallelFor scheduling would make
  // the LRU insertion order (and so *which* keys survive) nondeterministic
  // — the capacity/eviction accounting needs no parallelism to be proven.
  QueryService service(summary,
                       {.num_threads = 1, .cache_capacity = 4});

  // Sweep 12 distinct pagerank dampings: 3x the capacity.
  std::vector<QueryRequest> sweep;
  for (int i = 0; i < 12; ++i) {
    sweep.push_back(
        {QueryKind::kPageRank, 0, 0.05 + 0.07 * i, true, {}});
  }
  const auto first = service.Answer(sweep);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto stats = service.cache_stats();
  EXPECT_EQ(stats.computations, 12u);
  EXPECT_EQ(stats.evictions, 8u);
  EXPECT_LE(stats.entries, 4u);

  // The most recent parameterization survived; asking again is a hit.
  ASSERT_TRUE(service.AnswerOne(sweep.back()).ok());
  EXPECT_EQ(service.cache_stats().computations, 12u);

  // An evicted one is recomputed — and still byte-identical.
  const SummaryView view(summary);
  const auto recomputed = service.AnswerOne(sweep.front());
  ASSERT_TRUE(recomputed.ok());
  EXPECT_EQ(service.cache_stats().computations, 13u);
  auto canon = CanonicalizeRequest(sweep.front(), view.num_nodes());
  ASSERT_TRUE(canon.ok());
  EXPECT_EQ(recomputed->scores, AnswerQuery(view, *canon).scores);

  // Unbounded mode (capacity 0) keeps every entry.
  QueryService unbounded(summary, {.num_threads = 1, .cache_capacity = 0});
  ASSERT_TRUE(unbounded.Answer(sweep).ok());
  EXPECT_EQ(unbounded.cache_stats().evictions, 0u);
  EXPECT_EQ(unbounded.cache_stats().entries, 12u);
}

// The TSan-exercised hammer: concurrent batches while Publish swaps
// epochs. Every recorded answer must be byte-identical to a
// single-threaded run against the epoch it reports it was served from.
TEST(QueryServiceTest, ConcurrentBatchesAcrossEpochSwapsAreByteIdentical) {
  Graph g = GenerateBarabasiAlbert(90, 3, 417);
  const SummaryGraph summary_a = MakeSummary(g, 0.5);
  const SummaryGraph summary_b = MakeSummary(g, 0.3, {1, 2});

  QueryService service({.num_threads = 4, .cheap_grain = 4});
  // by_epoch[e - 1] is the summary published as epoch e; Publish is
  // called only from this thread.
  std::vector<const SummaryGraph*> by_epoch;
  service.Publish(summary_a);
  by_epoch.push_back(&summary_a);

  const auto requests = ServiceBatch(g.num_nodes());
  constexpr int kThreads = 4;
  constexpr int kIterations = 6;
  std::vector<std::vector<QueryService::BatchResult>> recorded(kThreads);

  std::vector<std::thread> hammers;
  for (int t = 0; t < kThreads; ++t) {
    hammers.emplace_back([&, t] {
      for (int it = 0; it < kIterations; ++it) {
        auto batch = service.Answer(requests);
        ASSERT_TRUE(batch.ok()) << batch.status().ToString();
        recorded[t].push_back(*std::move(batch));
      }
    });
  }
  // Swap epochs while the hammers run.
  for (int swap = 0; swap < 6; ++swap) {
    const SummaryGraph* next = swap % 2 == 0 ? &summary_b : &summary_a;
    service.Publish(*next);
    by_epoch.push_back(next);
    std::this_thread::yield();
  }
  for (std::thread& h : hammers) h.join();

  // Verify against a fresh single-threaded run per epoch actually served.
  std::map<uint64_t, std::vector<QueryResult>> want;
  for (const auto& per_thread : recorded) {
    for (const auto& batch : per_thread) {
      ASSERT_GE(batch.epoch, 1u);
      ASSERT_LE(batch.epoch, by_epoch.size());
      auto it = want.find(batch.epoch);
      if (it == want.end()) {
        const SummaryView view(*by_epoch[batch.epoch - 1]);
        it = want.emplace(batch.epoch, Expected(view, requests)).first;
      }
      ExpectSameResults(batch.results, it->second,
                        ("epoch=" + std::to_string(batch.epoch)).c_str());
    }
  }
  // The hammers must have been answered only from published epochs (and
  // at least the first one).
  EXPECT_FALSE(want.empty());
}

}  // namespace
}  // namespace pegasus
