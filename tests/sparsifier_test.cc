#include <gtest/gtest.h>

#include "src/core/merge_engine.h"
#include "src/core/personal_weights.h"
#include "src/core/sparsifier.h"
#include "src/eval/error_eval.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace pegasus {
namespace {

TEST(SparsifierTest, NoopWhenWithinBudget) {
  Graph g = ::pegasus::testing::PathGraph(8);
  SummaryGraph s = SummaryGraph::Identity(g);
  auto w = PersonalWeights::Compute(g, {}, 1.0);
  CostModel cm(g, w, s);
  const uint64_t dropped = SparsifyToBudget(
      g, cm, s, s.SizeInBits() + 1.0, SparsifyPolicy::kPaperCostAscending);
  EXPECT_EQ(dropped, 0u);
}

TEST(SparsifierTest, MeetsBudget) {
  Graph g = GenerateBarabasiAlbert(100, 3, 2);
  SummaryGraph s = SummaryGraph::Identity(g);
  auto w = PersonalWeights::Compute(g, {0}, 1.25);
  CostModel cm(g, w, s);
  const double budget = s.SizeInBits() * 0.6;
  SparsifyToBudget(g, cm, s, budget, SparsifyPolicy::kPaperCostAscending);
  EXPECT_LE(s.SizeInBits(), budget);
}

TEST(SparsifierTest, DropsCheapestSuperedgesFirstUnderMinDamage) {
  // Star: center 0 with leaves. Merge two leaves so one superedge covers 2
  // edges; singleton superedges cover 1 edge each. Min-damage must drop a
  // singleton superedge before the weight-2 one.
  Graph g = ::pegasus::testing::StarGraph(5);
  SummaryGraph s = SummaryGraph::Identity(g);
  auto w = PersonalWeights::Compute(g, {}, 1.0);
  CostModel cm(g, w, s);
  MergeEngine engine(g, s, cm, MergeScore::kRelative);
  SupernodeId pair = engine.ApplyMerge(1, 2);
  ASSERT_TRUE(s.HasSuperedge(0, pair));
  // Budget that forces dropping exactly one superedge.
  const double budget = s.SizeInBits() - 0.5;
  SparsifyToBudget(g, cm, s, budget, SparsifyPolicy::kMinDamage);
  EXPECT_TRUE(s.HasSuperedge(0, pair))
      << "the 2-edge superedge should be kept";
}

TEST(SparsifierTest, BothPoliciesMeetSameBudget) {
  Graph g = GenerateBarabasiAlbert(150, 3, 5);
  auto w = PersonalWeights::Compute(g, {1}, 1.5);
  for (SparsifyPolicy policy :
       {SparsifyPolicy::kPaperCostAscending, SparsifyPolicy::kMinDamage}) {
    SummaryGraph s = SummaryGraph::Identity(g);
    CostModel cm(g, w, s);
    const double budget = s.SizeInBits() * 0.5;
    SparsifyToBudget(g, cm, s, budget, policy);
    EXPECT_LE(s.SizeInBits(), budget);
  }
}

TEST(SparsifierTest, DroppingIncreasesError) {
  Graph g = GenerateBarabasiAlbert(80, 2, 7);
  SummaryGraph s = SummaryGraph::Identity(g);
  auto w = PersonalWeights::Compute(g, {}, 1.0);
  CostModel cm(g, w, s);
  const double before = ReconstructionError(g, s);
  SparsifyToBudget(g, cm, s, s.SizeInBits() * 0.5,
                   SparsifyPolicy::kPaperCostAscending);
  EXPECT_GT(ReconstructionError(g, s), before);
}

TEST(SparsifierTest, CanDropEverySuperedge) {
  Graph g = ::pegasus::testing::PathGraph(16);
  SummaryGraph s = SummaryGraph::Identity(g);
  auto w = PersonalWeights::Compute(g, {}, 1.0);
  CostModel cm(g, w, s);
  // Budget below the membership bits: every superedge goes.
  SparsifyToBudget(g, cm, s, 0.0, SparsifyPolicy::kMinDamage);
  EXPECT_EQ(s.num_superedges(), 0u);
}

}  // namespace
}  // namespace pegasus
