#include <gtest/gtest.h>

#include <cmath>

#include "src/core/personal_weights.h"
#include "src/graph/graph_builder.h"
#include "tests/test_util.h"

namespace pegasus {
namespace {

using ::pegasus::testing::PathGraph;
using ::pegasus::testing::StarGraph;

TEST(PersonalWeightsTest, AlphaOneIsUniform) {
  Graph g = PathGraph(6);
  auto w = PersonalWeights::Compute(g, {0}, 1.0);
  for (NodeId u = 0; u < 6; ++u) EXPECT_DOUBLE_EQ(w.pi(u), 1.0);
  EXPECT_DOUBLE_EQ(w.Z(), 1.0);
  EXPECT_DOUBLE_EQ(w.PairWeight(0, 5), 1.0);
}

TEST(PersonalWeightsTest, EmptyTargetsIsNonPersonalized) {
  Graph g = PathGraph(6);
  auto w = PersonalWeights::Compute(g, {}, 2.0);
  for (NodeId u = 0; u < 6; ++u) EXPECT_DOUBLE_EQ(w.pi(u), 1.0);
  EXPECT_DOUBLE_EQ(w.Z(), 1.0);
}

TEST(PersonalWeightsTest, PiFollowsDistances) {
  Graph g = PathGraph(5);
  const double alpha = 2.0;
  auto w = PersonalWeights::Compute(g, {0}, alpha);
  for (NodeId u = 0; u < 5; ++u) {
    EXPECT_NEAR(w.pi(u), std::pow(alpha, -static_cast<double>(u)), 1e-12);
  }
}

TEST(PersonalWeightsTest, MeanOrderedPairWeightIsOne) {
  Graph g = StarGraph(9);
  auto w = PersonalWeights::Compute(g, {3}, 1.5);
  const NodeId n = g.num_nodes();
  double total = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v) total += w.PairWeight(u, v);
    }
  }
  EXPECT_NEAR(total / (n * (n - 1.0)), 1.0, 1e-9);
}

TEST(PersonalWeightsTest, WeightsDecreaseWithDistance) {
  Graph g = PathGraph(8);
  auto w = PersonalWeights::Compute(g, {0}, 1.5);
  EXPECT_GT(w.PairWeight(0, 1), w.PairWeight(1, 2));
  EXPECT_GT(w.PairWeight(1, 2), w.PairWeight(6, 7));
}

TEST(PersonalWeightsTest, MultipleTargetsUseNearest) {
  Graph g = PathGraph(9);
  auto w = PersonalWeights::Compute(g, {0, 8}, 2.0);
  EXPECT_DOUBLE_EQ(w.distances()[0], 0u);
  EXPECT_DOUBLE_EQ(w.distances()[8], 0u);
  EXPECT_EQ(w.distances()[4], 4u);
  EXPECT_NEAR(w.pi(1), w.pi(7), 1e-12);
}

TEST(PersonalWeightsTest, UnreachableNodesGetMaxPlusOne) {
  Graph g = BuildGraph(5, {{0, 1}, {1, 2}});
  auto w = PersonalWeights::Compute(g, {0}, 1.5);
  // Nodes 3, 4 are unreachable; max finite distance is 2.
  EXPECT_EQ(w.distances()[3], 3u);
  EXPECT_EQ(w.distances()[4], 3u);
}

TEST(PersonalWeightsTest, LargerAlphaConcentratesWeight) {
  Graph g = PathGraph(10);
  auto w_low = PersonalWeights::Compute(g, {0}, 1.25);
  auto w_high = PersonalWeights::Compute(g, {0}, 2.0);
  // Ratio of near to far weight grows with alpha.
  const double ratio_low = w_low.PairWeight(0, 1) / w_low.PairWeight(8, 9);
  const double ratio_high = w_high.PairWeight(0, 1) / w_high.PairWeight(8, 9);
  EXPECT_GT(ratio_high, ratio_low);
}

TEST(PersonalWeightsTest, TotalsMatchPi) {
  Graph g = PathGraph(7);
  auto w = PersonalWeights::Compute(g, {2}, 1.5);
  double sum = 0.0, sum2 = 0.0;
  for (NodeId u = 0; u < 7; ++u) {
    sum += w.pi(u);
    sum2 += w.pi(u) * w.pi(u);
  }
  EXPECT_NEAR(w.TotalPi(), sum, 1e-12);
  EXPECT_NEAR(w.TotalPiSquared(), sum2, 1e-12);
}

}  // namespace
}  // namespace pegasus
