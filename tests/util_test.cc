#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/util/bits.h"
#include "src/util/rng.h"
#include "src/util/table.h"
#include "src/util/timer.h"

namespace pegasus {
namespace {

volatile double benchmark_sink = 0.0;

TEST(SplitMix64Test, Deterministic) {
  EXPECT_EQ(SplitMix64(42), SplitMix64(42));
  EXPECT_NE(SplitMix64(42), SplitMix64(43));
}

TEST(SplitMix64Test, MixesLowBits) {
  // Consecutive inputs should not produce consecutive outputs.
  std::set<uint64_t> low;
  for (uint64_t i = 0; i < 64; ++i) low.insert(SplitMix64(i) & 0xff);
  EXPECT_GT(low.size(), 32u);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 3000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(RngTest, SampleDistinctReturnsDistinctInRange) {
  Rng rng(19);
  auto s = rng.SampleDistinct(100, 30);
  std::set<uint64_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 30u);
  for (uint64_t x : s) EXPECT_LT(x, 100u);
}

TEST(RngTest, SampleDistinctWholeRange) {
  Rng rng(21);
  auto s = rng.SampleDistinct(5, 5);
  std::set<uint64_t> set(s.begin(), s.end());
  EXPECT_EQ(set, (std::set<uint64_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, SampleDistinctCountLargerThanBound) {
  Rng rng(23);
  auto s = rng.SampleDistinct(4, 10);
  EXPECT_EQ(s.size(), 4u);
}

TEST(BitsTest, Log2BitsConventions) {
  EXPECT_DOUBLE_EQ(Log2Bits(0), 0.0);
  EXPECT_DOUBLE_EQ(Log2Bits(1), 0.0);
  EXPECT_DOUBLE_EQ(Log2Bits(2), 1.0);
  EXPECT_DOUBLE_EQ(Log2Bits(8), 3.0);
  EXPECT_NEAR(Log2Bits(1000), 9.96578, 1e-4);
}

TEST(BitsTest, BinaryEntropyEndpointsAndPeak) {
  EXPECT_DOUBLE_EQ(BinaryEntropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(BinaryEntropy(1.0), 0.0);
  EXPECT_DOUBLE_EQ(BinaryEntropy(0.5), 1.0);
  EXPECT_NEAR(BinaryEntropy(0.1), 0.468996, 1e-5);
}

TEST(BitsTest, BinaryEntropySymmetric) {
  for (double p : {0.05, 0.2, 0.35}) {
    EXPECT_NEAR(BinaryEntropy(p), BinaryEntropy(1.0 - p), 1e-12);
  }
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  double x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  benchmark_sink = x;
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), t.ElapsedSeconds());
}

TEST(TableTest, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "22"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| longer"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.AddRow({"x"});
  EXPECT_NE(t.ToString().find("x"), std::string::npos);
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(0.5, 4), "0.5000");
}

TEST(FormatTest, FormatCount) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1049866), "1,049,866");
}

}  // namespace
}  // namespace pegasus
