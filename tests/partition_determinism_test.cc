// Partitioner determinism goldens: every partitioner in the shard-build
// registry is pinned by an FNV-1a hash of its assignment vector on a
// fixed graph + seed. A hash change on any platform, standard library, or
// thread count means shard layouts (and therefore every shard manifest
// and PSB built from them) silently diverged. To regenerate after an
// intentional algorithm change: run this test — each failure prints the
// actual hash as "actual 0x..." — and paste the new constants.

#include <gtest/gtest.h>

#include <cstdint>
#include <iomanip>
#include <sstream>
#include <vector>

#include "src/shard/shard_build.h"
#include "tests/test_util.h"

namespace pegasus::shard {
namespace {

using ::pegasus::testing::HashU32s;

constexpr uint32_t kParts = 4;
constexpr uint64_t kSeed = 9;

Graph GoldenGraph() { return GenerateBarabasiAlbert(300, 3, 42); }

std::string Hex(uint64_t h) {
  std::ostringstream out;
  out << "0x" << std::hex << std::setw(16) << std::setfill('0') << h;
  return out.str();
}

struct PartitionGoldenCase {
  PartitionerKind kind;
  uint64_t hash;
};

// The pinned assignments. These must agree with the hashes the same
// partitioners produce inside ShardBuild (same seed plumbing).
const PartitionGoldenCase kGoldens[] = {
    {PartitionerKind::kLouvain, 0xcc4ec086915f024cULL},
    {PartitionerKind::kBlp, 0x7fe16f6981f6afeeULL},
    {PartitionerKind::kMultilevel, 0x36329b6168e340edULL},
    // shp-i happens to match blp on this fixture (both settle to the
    // same balanced assignment); the two pins are still independent.
    {PartitionerKind::kShpI, 0x7fe16f6981f6afeeULL},
    {PartitionerKind::kShpII, 0x35bd35ecf2b3d82eULL},
    {PartitionerKind::kShpKL, 0x47d128776a5374aeULL},
    {PartitionerKind::kRandom, 0xfd31e6e7e468442eULL},
};

TEST(PartitionDeterminismTest, AssignmentsMatchGoldenHashes) {
  const Graph graph = GoldenGraph();
  for (const auto& c : kGoldens) {
    const Partition p = RunPartitioner(graph, kParts, c.kind, kSeed);
    ASSERT_TRUE(p.Valid(graph.num_nodes())) << PartitionerName(c.kind);
    const uint64_t actual = HashU32s(p.part_of);
    EXPECT_EQ(actual, c.hash)
        << PartitionerName(c.kind) << " actual " << Hex(actual);
  }
}

TEST(PartitionDeterminismTest, RerunsAreBitIdentical) {
  const Graph graph = GoldenGraph();
  for (const auto& c : kGoldens) {
    const Partition a = RunPartitioner(graph, kParts, c.kind, kSeed);
    const Partition b = RunPartitioner(graph, kParts, c.kind, kSeed);
    EXPECT_EQ(a.part_of, b.part_of) << PartitionerName(c.kind);
  }
}

TEST(PartitionDeterminismTest, SeedChangesTheLayout) {
  // Not a fairness property — just a guard that the seed is actually
  // plumbed through for the seeded partitioners.
  const Graph graph = GoldenGraph();
  for (PartitionerKind kind :
       {PartitionerKind::kLouvain, PartitionerKind::kRandom}) {
    const Partition a = RunPartitioner(graph, kParts, kind, 1);
    const Partition b = RunPartitioner(graph, kParts, kind, 2);
    EXPECT_NE(a.part_of, b.part_of) << PartitionerName(kind);
  }
}

}  // namespace
}  // namespace pegasus::shard
