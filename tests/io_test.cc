#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/graph/io.h"
#include "tests/test_util.h"

namespace pegasus {
namespace {

using ::pegasus::testing::PathGraph;

class IoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }
};

TEST_F(IoTest, RoundTrip) {
  Graph g = PathGraph(6);
  const std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(SaveEdgeList(g, path));
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_nodes(), 6u);
  EXPECT_EQ(loaded->num_edges(), 5u);
  std::remove(path.c_str());
}

TEST_F(IoTest, SkipsCommentsAndRemapsIds) {
  const std::string path = TempPath("snap_style.txt");
  {
    std::ofstream out(path);
    out << "# SNAP-style comment\n";
    out << "% KONECT-style comment\n";
    out << "100 200\n200 300\n100 300\n";
  }
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_nodes(), 3u);
  EXPECT_EQ(loaded->num_edges(), 3u);
  std::remove(path.c_str());
}

TEST_F(IoTest, NormalizesDuplicatesAndSelfLoops) {
  const std::string path = TempPath("dirty.txt");
  {
    std::ofstream out(path);
    out << "1 2\n2 1\n1 1\n2 3\n";
  }
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_nodes(), 3u);
  EXPECT_EQ(loaded->num_edges(), 2u);
  std::remove(path.c_str());
}

TEST_F(IoTest, AssignsDenseIdsInFirstAppearanceOrder) {
  // Regression: dense ids used to follow unordered_map iteration order,
  // so the numbering depended on the standard library. They are pinned to
  // first appearance in the file now.
  const std::string path = TempPath("appearance.txt");
  {
    std::ofstream out(path);
    out << "700 30\n";   // 700 -> 0, 30 -> 1
    out << "30 9001\n";  // 9001 -> 2
    out << "5 700\n";    // 5 -> 3
  }
  auto g = LoadEdgeList(path);
  ASSERT_TRUE(g.has_value());
  ASSERT_EQ(g->num_nodes(), 4u);
  ASSERT_EQ(g->num_edges(), 3u);
  EXPECT_TRUE(g->HasEdge(0, 1));  // 700-30
  EXPECT_TRUE(g->HasEdge(1, 2));  // 30-9001
  EXPECT_TRUE(g->HasEdge(0, 3));  // 700-5
  EXPECT_FALSE(g->HasEdge(2, 3));
  std::remove(path.c_str());
}

TEST_F(IoTest, MissingFileReturnsNotFound) {
  const auto g = LoadEdgeList("/nonexistent/really/not/here.txt");
  EXPECT_FALSE(g.has_value());
  EXPECT_EQ(g.status().code(), StatusCode::kNotFound);
}

TEST_F(IoTest, EmptyFileReturnsDataLoss) {
  const std::string path = TempPath("empty.txt");
  { std::ofstream out(path); }
  const auto g = LoadEdgeList(path);
  EXPECT_FALSE(g.has_value());
  EXPECT_EQ(g.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pegasus
