# pegasus-lint fixture: the reassoc rule over CMake files. Scanned by
# tools/lint_selftest.py, never included by any build.

set(CMAKE_CXX_FLAGS "${CMAKE_CXX_FLAGS} -ffast-math")  # expect-lint: reassoc
add_compile_options(-Ofast)  # expect-lint: reassoc

# Ordinary optimization flags are clean.
add_compile_options(-O2)
