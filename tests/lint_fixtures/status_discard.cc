// pegasus-lint fixture: the status-discard rule. Scanned by
// tools/lint_selftest.py, never compiled (Status/StatusOr are only
// declared as far as the token scanner needs). See README.md.

namespace fixture {

class Status;
template <typename T>
class StatusOr;

Status MakeThing();
StatusOr<int> ParseThing(const char* text);

struct Writer {
  Status Flush();
};

// Full-statement discarded calls: flagged.
void Discards(Writer& w) {
  MakeThing();         // expect-lint: status-discard
  ParseThing("four");  // expect-lint: status-discard
  w.Flush();           // expect-lint: status-discard
}

// A (void)-cast is still a silently dropped error: flagged.
void VoidCast() {
  (void)MakeThing();  // expect-lint: status-discard
}

// Consumed results are clean.
bool Consumes(Writer& w) {
  if (!MakeThing()) return false;
  auto parsed = ParseThing("four");
  return static_cast<bool>(w.Flush()) && static_cast<bool>(parsed);
}

// Reasoned suppression: clean.
void SuppressedDiscard() {
  // lint: status-ignored-ok(fixture: best-effort call whose failure changes nothing)
  MakeThing();
}

}  // namespace fixture
