// pegasus-lint fixture: the hot-snapshot rule. Scanned by
// tools/lint_selftest.py, never compiled. See README.md.

#include <cstddef>
#include <utility>
#include <vector>

namespace fixture {

struct Summary {
  std::vector<std::pair<int, int>> CanonicalSuperedges() const;
  std::vector<std::pair<int, int>> CanonicalSuperedges(int group) const;
};

// Hoisted before the loop: the sanctioned shape, clean.
size_t Hoisted(const Summary& s, int rounds) {
  const auto edges = s.CanonicalSuperedges();
  size_t total = 0;
  for (int r = 0; r < rounds; ++r) total += edges.size();
  return total;
}

// Rebuilding the snapshot every iteration of a braced for: flagged.
size_t PerIterationFor(const Summary& s, int rounds) {
  size_t total = 0;
  for (int r = 0; r < rounds; ++r) {
    total += s.CanonicalSuperedges().size();  // expect-lint: hot-snapshot
  }
  return total;
}

// Single-statement loop bodies are bodies too: flagged.
size_t PerIterationSingleStatement(const Summary& s, int rounds) {
  size_t total = 0;
  for (int r = 0; r < rounds; ++r)
    total += s.CanonicalSuperedges().size();  // expect-lint: hot-snapshot
  return total;
}

// while and do-while bodies: flagged.
size_t PerIterationWhile(const Summary& s, size_t stop) {
  size_t total = 0;
  while (total < stop) {
    total += s.CanonicalSuperedges().size();  // expect-lint: hot-snapshot
  }
  do {
    total += s.CanonicalSuperedges().size();  // expect-lint: hot-snapshot
  } while (total < stop);
  return total;
}

// A nested loop flags the call once (it sits in both bodies' spans).
size_t Nested(const Summary& s, int rounds) {
  size_t total = 0;
  for (int r = 0; r < rounds; ++r) {
    for (int k = 0; k < r; ++k) {
      total += s.CanonicalSuperedges(k).size();  // expect-lint: hot-snapshot
    }
  }
  return total;
}

// A range-for header evaluates its range expression once — clean.
size_t HeaderOnce(const Summary& s) {
  size_t total = 0;
  for (const auto& edge : s.CanonicalSuperedges()) {
    total += static_cast<size_t>(edge.first);
  }
  return total;
}

// Reasoned suppression: clean.
size_t SuppressedRebuild(const Summary& s, int rounds) {
  size_t total = 0;
  for (int r = 0; r < rounds; ++r) {
    // lint: hot-snapshot-ok(fixture: demonstrates a reasoned suppression)
    total += s.CanonicalSuperedges(r).size();
  }
  return total;
}

// Bare suppression: the marker itself is a violation, and it silences
// nothing.
size_t BareSuppression(const Summary& s, int rounds) {
  size_t total = 0;
  for (int r = 0; r < rounds; ++r) {
    // lint: hot-snapshot-ok()  -- expect-lint: hot-snapshot
    total += s.CanonicalSuperedges().size();  // expect-lint: hot-snapshot
  }
  return total;
}

}  // namespace fixture
