// pegasus-lint fixture: the hash-order rule. Scanned by
// tools/lint_selftest.py, never compiled. See README.md for the
// expect-lint convention.

#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Store {
  std::unordered_map<int, int> table;
  std::unordered_set<int> keys;
};

// Range-for over a hash-ordered member: flagged.
int IterateMember(const Store& s) {
  int sum = 0;
  for (const auto& kv : s.table) {  // expect-lint: hash-order
    sum += kv.second;
  }
  return sum;
}

// Range-for over a hash-ordered local: flagged.
int IterateLocal() {
  std::unordered_set<int> seen;
  seen.insert(1);
  int count = 0;
  for (int k : seen) {  // expect-lint: hash-order
    count += k;
  }
  return count;
}

// Explicit iterator walk: flagged.
int BeginWalk(const Store& s) {
  int sum = 0;
  for (auto it = s.table.begin(); it != s.table.end(); ++it) {  // expect-lint: hash-order
    sum += it->second;
  }
  return sum;
}

// Reasoned suppression: clean (the selftest fails on any unexpected
// report, which is what pins this).
int SuppressedIterate(const Store& s) {
  int sum = 0;
  // lint: hash-order-ok(sum is commutative; every enumeration order yields the same total)
  for (const auto& kv : s.table) {
    sum += kv.second;
  }
  return sum;
}

// Bare suppression: the empty reason is itself a violation AND it does
// not silence the loop it precedes.
int BareSuppression(const Store& s) {
  int sum = 0;
  // lint: hash-order-ok()  -- expect-lint: hash-order
  for (const auto& kv : s.table) {  // expect-lint: hash-order
    sum += kv.second;
  }
  return sum;
}

// Membership tests and point lookups never depend on enumeration order:
// clean.
bool Lookup(const Store& s, int k) {
  return s.keys.count(k) != 0 || s.table.find(k) != s.table.end();
}

}  // namespace fixture
