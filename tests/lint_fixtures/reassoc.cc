// pegasus-lint fixture: the reassoc rule (C++ side; the CMake side is
// fast_math.cmake). Scanned by tools/lint_selftest.py, never compiled.

namespace fixture {

// An OpenMP reduction reassociates the floating-point sum: flagged.
double SumReduction(const double* xs, int n) {
  double total = 0.0;
#pragma omp simd reduction(+ : total)  // expect-lint: reassoc
  for (int i = 0; i < n; ++i) total += xs[i];
  return total;
}

// Fast-math via pragma: flagged.
#pragma GCC optimize("fast-math")  // expect-lint: reassoc
double SumFast(const double* xs, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += xs[i];
  return total;
}

// Reasoned suppression: clean.
double SumSuppressed(const double* xs, int n) {
  double total = 0.0;
  // lint: reassoc-ok(fixture: this reduction feeds a diagnostic, not a golden)
#pragma omp simd reduction(+ : total)
  for (int i = 0; i < n; ++i) total += xs[i];
  return total;
}

}  // namespace fixture
