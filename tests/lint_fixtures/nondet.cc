// pegasus-lint fixture: the nondet rule. Scanned by
// tools/lint_selftest.py, never compiled. See README.md.

#include <chrono>  // expect-lint: nondet
#include <cstdlib>

namespace fixture {

// Libc PRNG outside src/util/rng.*: flagged.
int RawRand() {
  return std::rand();  // expect-lint: nondet
}

// Hardware entropy: flagged.
unsigned RawEntropy() {
  std::random_device rd;  // expect-lint: nondet
  return rd();
}

// Raw clock reads outside src/util/timer.* and bench/: flagged.
long RawClock() {
  const auto t0 = std::chrono::steady_clock::now();  // expect-lint: nondet
  return t0.time_since_epoch().count();
}

long RawOsClock() {
  return static_cast<long>(time(nullptr));  // expect-lint: nondet
}

// Reasoned suppression: clean.
int SuppressedEntropy() {
  // lint: nondet-ok(fixture: demonstrates a reasoned suppression)
  return std::rand();
}

}  // namespace fixture
