// pegasus-lint fixture: miniature psb_format.h for the versioning-rule
// lifecycle test in tools/lint_selftest.py. The selftest copies this
// tree to a temp dir, locks it, edits the enum, and asserts the rule
// fires at the enum's line until kPsbVersion is bumped and the lock
// refreshed.

#ifndef FIXTURE_CORE_PSB_FORMAT_H_
#define FIXTURE_CORE_PSB_FORMAT_H_

#include <cstdint>

namespace fixture {

enum class SectionId : uint8_t {
  kHeader = 0,
  kMembers = 1,
  kAdjacency = 2,
};

constexpr uint8_t kPsbVersion = 1;

}  // namespace fixture

#endif  // FIXTURE_CORE_PSB_FORMAT_H_
