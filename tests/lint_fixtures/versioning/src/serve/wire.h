// pegasus-lint fixture: miniature wire.h for the versioning-rule
// lifecycle test in tools/lint_selftest.py (see ../core/psb_format.h).

#ifndef FIXTURE_SERVE_WIRE_H_
#define FIXTURE_SERVE_WIRE_H_

#include <cstdint>

namespace fixture {

enum class FrameType : uint8_t {
  kBatch = 1,
  kOk = 2,
  kError = 3,
};

constexpr uint8_t kWireVersion = 1;

}  // namespace fixture

#endif  // FIXTURE_SERVE_WIRE_H_
