#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/partition/random_partition.h"
#include "src/partition/social_hash.h"
#include "tests/test_util.h"

namespace pegasus {
namespace {

class ShpVariantTest : public ::testing::TestWithParam<ShpVariant> {};

TEST_P(ShpVariantTest, ValidPartition) {
  Graph g = GeneratePlantedPartition(300, 6, 8.0, 1.0, 50);
  Partition p = ShpPartition(g, 6, GetParam());
  EXPECT_TRUE(p.Valid(g.num_nodes()));
}

TEST_P(ShpVariantTest, PreservesBalance) {
  Graph g = GeneratePlantedPartition(320, 8, 8.0, 1.0, 51);
  Partition p = ShpPartition(g, 8, GetParam());
  EXPECT_LE(BalanceFactor(p, g.num_nodes()), 1.1);
}

TEST_P(ShpVariantTest, ImprovesCutOverRandom) {
  Graph g = GeneratePlantedPartition(400, 8, 10.0, 0.5, 52);
  ShpConfig config;
  config.seed = 3;
  Partition refined = ShpPartition(g, 8, GetParam(), config);
  Partition random = RandomPartition(g.num_nodes(), 8, 3);
  EXPECT_LT(CutEdges(g, refined), CutEdges(g, random));
}

TEST_P(ShpVariantTest, DeterministicForSeed) {
  Graph g = GeneratePlantedPartition(200, 4, 8.0, 1.0, 53);
  ShpConfig config;
  config.seed = 11;
  Partition a = ShpPartition(g, 4, GetParam(), config);
  Partition b = ShpPartition(g, 4, GetParam(), config);
  EXPECT_EQ(a.part_of, b.part_of);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, ShpVariantTest,
                         ::testing::Values(ShpVariant::kI, ShpVariant::kII,
                                           ShpVariant::kKL),
                         [](const auto& info) {
                           switch (info.param) {
                             case ShpVariant::kI:
                               return "SHPI";
                             case ShpVariant::kII:
                               return "SHPII";
                             case ShpVariant::kKL:
                               return "SHPKL";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace pegasus
