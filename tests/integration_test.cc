// End-to-end and parameterized property tests spanning multiple modules:
// the full PeGaSus pipeline on the dataset analogs, budget/alpha sweeps,
// and cross-checks between summarizers, queries, and the error evaluator.

#include <gtest/gtest.h>

#include <tuple>

#include "src/baselines/ssumm.h"
#include "src/core/pegasus.h"
#include "src/core/personal_weights.h"
#include "src/distributed/experiment.h"
#include "src/eval/error_eval.h"
#include "src/eval/metrics.h"
#include "src/graph/datasets.h"
#include "src/graph/generators.h"
#include "src/query/exact_queries.h"
#include "src/query/summary_queries.h"
#include "src/util/rng.h"

namespace pegasus {
namespace {

// ---------------------------------------------------------------------------
// Budget sweep: for every dataset analog and every ratio, PeGaSus must meet
// the budget and produce a valid partition.
class BudgetSweepTest
    : public ::testing::TestWithParam<std::tuple<DatasetId, double>> {};

TEST_P(BudgetSweepTest, MeetsBudgetWithValidOutput) {
  const auto [id, ratio] = GetParam();
  Dataset ds = MakeDataset(id, DatasetScale::kTiny);
  const Graph& g = ds.graph;
  PegasusConfig config;
  config.max_iterations = 10;
  auto result = *SummarizeGraphToRatio(g, {0, 1}, ratio, config);
  EXPECT_LE(result.final_size_bits, ratio * g.SizeInBits() + 1e-9);

  std::vector<uint32_t> seen(g.num_nodes(), 0);
  for (SupernodeId a : result.summary.ActiveSupernodes()) {
    for (NodeId u : result.summary.members(a)) ++seen[u];
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) ASSERT_EQ(seen[u], 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, BudgetSweepTest,
    ::testing::Combine(::testing::Values(DatasetId::kLastFmAsia,
                                         DatasetId::kCaida, DatasetId::kDblp,
                                         DatasetId::kAmazon,
                                         DatasetId::kSkitter,
                                         DatasetId::kWikipedia),
                       ::testing::Values(0.3, 0.5, 0.7)));

// ---------------------------------------------------------------------------
// Alpha sweep: every degree of personalization yields a well-formed
// summary, and the evaluator agrees with the weights' normalization.
class AlphaSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(AlphaSweepTest, SummarizesAndEvaluates) {
  const double alpha = GetParam();
  Graph g = GenerateBarabasiAlbert(300, 3, 71);
  PegasusConfig config;
  config.alpha = alpha;
  config.max_iterations = 8;
  std::vector<NodeId> targets{0, 10, 20};
  auto result = *SummarizeGraphToRatio(g, targets, 0.5, config);
  EXPECT_LE(result.final_size_bits, 0.5 * g.SizeInBits() + 1e-9);
  auto w = PersonalWeights::Compute(g, targets, alpha);
  EXPECT_GE(PersonalizedError(g, result.summary, w), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweepTest,
                         ::testing::Values(1.0, 1.05, 1.25, 1.5, 1.75, 2.0));

// ---------------------------------------------------------------------------
// Beta sweep: the adaptive threshold works across its whole range.
class BetaSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(BetaSweepTest, Summarizes) {
  Graph g = GenerateBarabasiAlbert(250, 3, 72);
  PegasusConfig config;
  config.beta = GetParam();
  config.max_iterations = 8;
  auto result = *SummarizeGraphToRatio(g, {5}, 0.4, config);
  EXPECT_LE(result.final_size_bits, 0.4 * g.SizeInBits() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Betas, BetaSweepTest,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.9));

// ---------------------------------------------------------------------------
// Query pipeline: summary-based answers must beat a constant-vector
// baseline on Spearman correlation for all three query types.
TEST(IntegrationTest, SummaryAnswersCorrelateWithTruth) {
  Dataset ds = MakeDataset(DatasetId::kLastFmAsia, DatasetScale::kTiny, 73);
  const Graph& g = ds.graph;
  Rng rng(73);
  std::vector<NodeId> queries;
  for (int i = 0; i < 5; ++i) {
    queries.push_back(static_cast<NodeId>(rng.Uniform(g.num_nodes())));
  }
  PegasusConfig config;
  config.alpha = 1.25;
  auto result = *SummarizeGraphToRatio(g, queries, 0.5, config);
  for (QueryType type : {QueryType::kRwr, QueryType::kHop, QueryType::kPhp}) {
    auto acc = MeasureSummaryAccuracy(g, result.summary, queries, type);
    EXPECT_GT(acc.spearman, 0.2) << "query type " << static_cast<int>(type);
    EXPECT_LT(acc.smape, 0.9);
  }
}

// Personalized beats non-personalized on target-node queries at the same
// budget — the headline result of Fig. 7, checked end to end.
TEST(IntegrationTest, PersonalizationImprovesTargetQueryAccuracy) {
  Dataset ds = MakeDataset(DatasetId::kLastFmAsia, DatasetScale::kSmall, 74);
  const Graph& g = ds.graph;
  Rng rng(74);
  std::vector<NodeId> targets;
  for (uint64_t raw : rng.SampleDistinct(g.num_nodes(), 10)) {
    targets.push_back(static_cast<NodeId>(raw));
  }

  PegasusConfig config;
  config.alpha = 1.25;
  config.seed = 7;
  auto personalized = *SummarizeGraphToRatio(g, targets, 0.5, config);
  auto plain = *SsummSummarizeToRatio(g, 0.5, {.seed = 7});

  // Aggregate RWR + HOP SMAPE over the target nodes; the single-dataset,
  // single-seed comparison is deterministic.
  double p_score = 0.0, np_score = 0.0;
  for (QueryType type : {QueryType::kRwr, QueryType::kHop}) {
    p_score +=
        MeasureSummaryAccuracy(g, personalized.summary, targets, type).smape;
    np_score += MeasureSummaryAccuracy(g, plain.summary, targets, type).smape;
  }
  EXPECT_LT(p_score, np_score);
}

// The summary is a drop-in graph substitute: BFS via Alg. 4 neighbor
// queries agrees with BFS on the materialized reconstruction.
TEST(IntegrationTest, SummaryBfsEqualsReconstructedBfs) {
  Graph g = GenerateBarabasiAlbert(120, 2, 75);
  auto result = *SummarizeGraphToRatio(g, {0}, 0.5);
  Graph reconstructed = result.summary.Reconstruct();
  for (NodeId q : {0u, 17u, 63u}) {
    auto via_summary = FastSummaryHopDistances(result.summary, q);
    auto via_graph = ExactHopDistances(reconstructed, q);
    EXPECT_EQ(via_summary, via_graph) << "query " << q;
  }
}

// Error monotonicity: tighter budgets cannot decrease the personalized
// error (checked across three budgets with a shared seed).
TEST(IntegrationTest, ErrorMonotoneInBudget) {
  Graph g = GenerateBarabasiAlbert(400, 3, 76);
  std::vector<NodeId> targets{1, 2, 3};
  PegasusConfig config;
  config.seed = 11;
  auto w = PersonalWeights::Compute(g, targets, config.alpha);
  double prev_error = -1.0;
  for (double ratio : {0.9, 0.5, 0.2}) {
    auto result = *SummarizeGraphToRatio(g, targets, ratio, config);
    const double err = PersonalizedError(g, result.summary, w);
    EXPECT_GE(err, prev_error) << "ratio " << ratio;
    prev_error = err;
  }
}

}  // namespace
}  // namespace pegasus
