// Shard manifest tests: canonical save/load round trip, structural
// validation (counts, ranges, non-empty shards), the parser's corruption
// matrix (magic, ordering, truncation, trailing data), path resolution
// against the manifest directory, and whole-file checksum verification.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "src/shard/manifest.h"
#include "src/util/status.h"

namespace pegasus::shard {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string FileText(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {(std::istreambuf_iterator<char>(in)),
          std::istreambuf_iterator<char>()};
}

void WriteText(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

ShardManifest SampleManifest() {
  ShardManifest m;
  m.num_shards = 3;
  m.num_nodes = 40;
  m.partitioner = "louvain";
  m.shards = {{"shard_000.psb", 0x0102030405060708ULL},
              {"shard_001.psb", 0xdeadbeefdeadbeefULL},
              {"shard_002.psb", 0}};
  m.node_shard.resize(40);
  for (NodeId v = 0; v < 40; ++v) m.node_shard[v] = v % 3;
  return m;
}

TEST(ShardManifestTest, SaveLoadRoundTrip) {
  const std::string path = TempPath("roundtrip.psm");
  const ShardManifest m = SampleManifest();
  ASSERT_TRUE(SaveManifest(m, path));
  auto loaded = LoadManifest(path);
  ASSERT_TRUE(loaded) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_shards, m.num_shards);
  EXPECT_EQ(loaded->num_nodes, m.num_nodes);
  EXPECT_EQ(loaded->partitioner, m.partitioner);
  ASSERT_EQ(loaded->shards.size(), m.shards.size());
  for (uint32_t i = 0; i < m.num_shards; ++i) {
    EXPECT_EQ(loaded->shards[i].psb_path, m.shards[i].psb_path) << i;
    EXPECT_EQ(loaded->shards[i].checksum, m.shards[i].checksum) << i;
  }
  EXPECT_EQ(loaded->node_shard, m.node_shard);
}

TEST(ShardManifestTest, WriterIsCanonical) {
  const std::string a = TempPath("canon_a.psm");
  const std::string b = TempPath("canon_b.psm");
  ASSERT_TRUE(SaveManifest(SampleManifest(), a));
  ASSERT_TRUE(SaveManifest(SampleManifest(), b));
  EXPECT_EQ(FileText(a), FileText(b));
  EXPECT_EQ(FileText(a).rfind(kManifestMagic, 0), 0u);
}

TEST(ShardManifestTest, ValidateCatchesStructuralViolations) {
  {
    ShardManifest m = SampleManifest();
    m.num_shards = 0;
    m.shards.clear();
    EXPECT_FALSE(m.Validate());
  }
  {
    ShardManifest m = SampleManifest();
    m.shards.pop_back();  // entry count != num_shards
    EXPECT_FALSE(m.Validate());
  }
  {
    ShardManifest m = SampleManifest();
    m.node_shard.pop_back();  // map size != num_nodes
    EXPECT_FALSE(m.Validate());
  }
  {
    ShardManifest m = SampleManifest();
    m.node_shard[7] = 3;  // out of range
    EXPECT_FALSE(m.Validate());
  }
  {
    ShardManifest m = SampleManifest();
    for (auto& s : m.node_shard) s = 0;  // shards 1, 2 own nothing
    EXPECT_FALSE(m.Validate());
  }
  {
    ShardManifest m = SampleManifest();
    m.shards[1].psb_path.clear();
    EXPECT_FALSE(m.Validate());
  }
  EXPECT_TRUE(SampleManifest().Validate());
}

TEST(ShardManifestTest, ShardOfIsTheRoutingTable) {
  const ShardManifest m = SampleManifest();
  for (NodeId v = 0; v < m.num_nodes; ++v) EXPECT_EQ(m.ShardOf(v), v % 3);
}

TEST(ShardManifestTest, LoadRejectsCorruption) {
  const std::string good_path = TempPath("corrupt_base.psm");
  ASSERT_TRUE(SaveManifest(SampleManifest(), good_path));
  const std::string good = FileText(good_path);
  const std::string path = TempPath("corrupt.psm");

  const auto expect_rejected = [&](const std::string& text,
                                   const char* what) {
    WriteText(path, text);
    auto loaded = LoadManifest(path);
    EXPECT_FALSE(loaded) << what;
    if (!loaded) {
      EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss) << what;
    }
  };

  expect_rejected("PEGASUS-SHARD-MANIFEST v9\n" +
                      good.substr(good.find('\n') + 1),
                  "wrong magic version");
  expect_rejected(good.substr(0, good.size() - 5), "truncated end marker");
  expect_rejected(good + "extra\n", "trailing data");
  {
    // Swap the shard 0 and shard 1 lines: ids out of order.
    std::string text = good;
    const size_t l0 = text.find("shard 0 ");
    const size_t l1 = text.find("shard 1 ");
    const size_t l2 = text.find("shard 2 ");
    const std::string line0 = text.substr(l0, l1 - l0);
    const std::string line1 = text.substr(l1, l2 - l1);
    text = text.substr(0, l0) + line1 + line0 + text.substr(l2);
    expect_rejected(text, "out-of-order shard lines");
  }
  {
    std::string text = good;
    const size_t pos = text.find("deadbeef");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 8, "notahexx");
    expect_rejected(text, "malformed checksum");
  }
  {
    // Map entry out of range is caught by the final Validate.
    std::string text = good;
    const size_t map_pos = text.find("map\n");
    ASSERT_NE(map_pos, std::string::npos);
    text.replace(map_pos + 4, 1, "9");
    expect_rejected(text, "map entry out of range");
  }

  EXPECT_EQ(LoadManifest(TempPath("does_not_exist.psm")).status().code(),
            StatusCode::kNotFound);
}

TEST(ShardManifestTest, PathResolutionIsManifestRelative) {
  EXPECT_EQ(ManifestDir("/a/b/manifest.psm"), "/a/b");
  EXPECT_EQ(ManifestDir("manifest.psm"), ".");
  EXPECT_EQ(ManifestDir("/manifest.psm"), "/");
  const ShardManifest m = SampleManifest();
  EXPECT_EQ(ShardPsbPath(m, "/a/b", 1), "/a/b/shard_001.psb");
  ShardManifest abs = m;
  abs.shards[1].psb_path = "/elsewhere/s.psb";
  EXPECT_EQ(ShardPsbPath(abs, "/a/b", 1), "/elsewhere/s.psb");
}

TEST(ShardManifestTest, ChecksumVerificationCatchesCorruption) {
  const std::string shard_path = TempPath("checksum_shard.psb");
  WriteText(shard_path, "not really a psb, but bytes are bytes");
  auto checksum = ChecksumFile(shard_path);
  ASSERT_TRUE(checksum);

  ShardManifest m;
  m.num_shards = 1;
  m.num_nodes = 2;
  m.partitioner = "random";
  m.shards = {{"checksum_shard.psb", *checksum}};
  m.node_shard = {0, 0};
  EXPECT_TRUE(VerifyShardChecksum(m, ::testing::TempDir(), 0));

  WriteText(shard_path, "not really a psb, but CORRUPT bytes");
  const Status corrupt = VerifyShardChecksum(m, ::testing::TempDir(), 0);
  EXPECT_FALSE(corrupt);
  EXPECT_EQ(corrupt.code(), StatusCode::kDataLoss);
  EXPECT_NE(corrupt.message().find("checksum mismatch"), std::string::npos);
}

}  // namespace
}  // namespace pegasus::shard
