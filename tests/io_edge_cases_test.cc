// Edge cases for file I/O and bench plumbing not covered elsewhere.

#include <gtest/gtest.h>

#include <fstream>

#include "src/core/summary_io.h"
#include "src/graph/io.h"
#include "tests/test_util.h"

namespace pegasus {
namespace {

using ::pegasus::testing::PathGraph;

TEST(IoEdgeCasesTest, SaveEdgeListToBadPathFails) {
  const Status s = SaveEdgeList(PathGraph(3), "/no/such/dir/graph.txt");
  EXPECT_FALSE(s);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
}

TEST(IoEdgeCasesTest, SaveSummaryToBadPathFails) {
  Graph g = PathGraph(3);
  const Status s = SaveSummary(SummaryGraph::Identity(g), "/no/such/dir/x");
  EXPECT_FALSE(s);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
}

TEST(IoEdgeCasesTest, LoadEdgeListIgnoresMalformedLines) {
  const std::string path = ::testing::TempDir() + "/malformed.txt";
  {
    std::ofstream out(path);
    out << "0 1\n";
    out << "not an edge\n";
    out << "2 3\n";
  }
  auto g = LoadEdgeList(path);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->num_edges(), 2u);
  std::remove(path.c_str());
}

TEST(IoEdgeCasesTest, SummaryWithSingleSupernodeRoundTrips) {
  Graph g = PathGraph(4);
  SummaryGraph s = SummaryGraph::Identity(g);
  auto active = s.ActiveSupernodes();
  while (active.size() > 1) {
    s.MergeSupernodes(active[0], active[1]);
    active = s.ActiveSupernodes();
  }
  s.SetSuperedge(active[0], active[0], 3);
  const std::string path = ::testing::TempDir() + "/single.summary";
  ASSERT_TRUE(SaveSummary(s, path));
  auto loaded = LoadSummary(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_supernodes(), 1u);
  EXPECT_EQ(loaded->SuperedgeWeight(0, 0), 3u);
  std::remove(path.c_str());
}

TEST(IoEdgeCasesTest, SummaryTruncatedFileRejected) {
  const std::string path = ::testing::TempDir() + "/truncated.summary";
  {
    std::ofstream out(path);
    out << "PEGASUS-SUMMARY v1\n";
    out << "nodes 4 supernodes 2 superedges 1\n";
    out << "0 0 1\n";  // membership cut short (only 3 of 4 labels)
  }
  EXPECT_FALSE(LoadSummary(path).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pegasus
