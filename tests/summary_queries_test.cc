#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/core/merge_engine.h"
#include "src/core/pegasus.h"
#include "src/core/personal_weights.h"
#include "src/graph/bfs.h"
#include "src/graph/generators.h"
#include "src/query/summary_queries.h"
#include "tests/test_util.h"

namespace pegasus {
namespace {

using ::pegasus::testing::Fig3Graph;
using ::pegasus::testing::PathGraph;
using ::pegasus::testing::TwoCliquesGraph;

// Builds a small merged summary with exact reconstruction for Fig. 3
// (merging the twins {0,1} loses nothing).
SummaryGraph MergedFig3(const Graph& g) {
  SummaryGraph s = SummaryGraph::Identity(g);
  auto w = PersonalWeights::Compute(g, {}, 1.0);
  CostModel model(g, w, s);
  MergeEngine engine(g, s, model, MergeScore::kRelative);
  engine.ApplyMerge(0, 1);
  return s;
}

TEST(SummaryNeighborsTest, IdentitySummaryMatchesGraph) {
  Graph g = Fig3Graph();
  SummaryGraph s = SummaryGraph::Identity(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto nb = SummaryNeighbors(s, u);
    std::vector<NodeId> expected(g.neighbors(u).begin(),
                                 g.neighbors(u).end());
    EXPECT_EQ(nb, expected) << "node " << u;
  }
}

TEST(SummaryNeighborsTest, MergedTwinsStillExact) {
  Graph g = Fig3Graph();
  SummaryGraph s = MergedFig3(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto nb = SummaryNeighbors(s, u);
    std::vector<NodeId> expected(g.neighbors(u).begin(),
                                 g.neighbors(u).end());
    EXPECT_EQ(nb, expected) << "node " << u;
  }
}

TEST(SummaryNeighborsTest, SelfLoopIncludesCoMembers) {
  Graph g = ::pegasus::testing::CompleteGraph(4);
  SummaryGraph s = SummaryGraph::Identity(g);
  auto w = PersonalWeights::Compute(g, {}, 1.0);
  CostModel cm(g, w, s);
  MergeEngine engine(g, s, cm, MergeScore::kRelative);
  SupernodeId m = engine.ApplyMerge(0, 1);
  ASSERT_TRUE(s.HasSuperedge(m, m));
  auto nb = SummaryNeighbors(s, 0);
  EXPECT_TRUE(std::find(nb.begin(), nb.end(), 1u) != nb.end());
  EXPECT_TRUE(std::find(nb.begin(), nb.end(), 0u) == nb.end());
}

TEST(SummaryHopTest, FastMatchesFaithfulOnIdentity) {
  Graph g = GenerateBarabasiAlbert(60, 2, 19);
  SummaryGraph s = SummaryGraph::Identity(g);
  for (NodeId q : {0u, 10u, 59u}) {
    EXPECT_EQ(SummaryHopDistances(s, q), FastSummaryHopDistances(s, q));
  }
}

TEST(SummaryHopTest, FastMatchesFaithfulOnSummarized) {
  Graph g = GenerateBarabasiAlbert(120, 3, 20);
  auto result = *SummarizeGraphToRatio(g, {0}, 0.4);
  for (NodeId q : {0u, 7u, 42u, 111u}) {
    EXPECT_EQ(SummaryHopDistances(result.summary, q),
              FastSummaryHopDistances(result.summary, q))
        << "query " << q;
  }
}

TEST(SummaryHopTest, IdentityMatchesExactBfs) {
  Graph g = TwoCliquesGraph(4);
  SummaryGraph s = SummaryGraph::Identity(g);
  EXPECT_EQ(FastSummaryHopDistances(s, 0), BfsDistances(g, 0));
}

TEST(SummaryHopTest, SelfLoopCoMembersAtDistanceOne) {
  Graph g = ::pegasus::testing::CompleteGraph(5);
  SummaryGraph s = SummaryGraph::Identity(g);
  auto w = PersonalWeights::Compute(g, {}, 1.0);
  CostModel cm(g, w, s);
  MergeEngine engine(g, s, cm, MergeScore::kRelative);
  engine.ApplyMerge(0, 1);
  auto d = FastSummaryHopDistances(s, 0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], 1u);
}

TEST(SummaryHopTest, NoSuperedgesMeansUnreachable) {
  Graph g = PathGraph(4);
  SummaryGraph s = SummaryGraph::Identity(g);
  for (SupernodeId a : s.ActiveSupernodes()) {
    std::vector<SupernodeId> nb;
    for (const auto& [c, w] : s.superedges(a)) {
      (void)w;
      if (c >= a) nb.push_back(c);
    }
    for (SupernodeId c : nb) s.EraseSuperedge(a, c);
  }
  auto d = FastSummaryHopDistances(s, 1);
  EXPECT_EQ(d[1], 0u);
  EXPECT_EQ(d[0], kUnreachable);
}

TEST(SummaryRwrTest, IdentityMatchesExact) {
  Graph g = GenerateBarabasiAlbert(80, 2, 21);
  SummaryGraph s = SummaryGraph::Identity(g);
  auto exact = ExactRwrScores(g, 5);
  auto approx = SummaryRwrScores(s, 5);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_NEAR(approx[u], exact[u], 1e-6) << "node " << u;
  }
}

TEST(SummaryRwrTest, SumsToAtMostOne) {
  Graph g = GenerateBarabasiAlbert(150, 3, 22);
  auto result = *SummarizeGraphToRatio(g, {3}, 0.4);
  auto r = SummaryRwrScores(result.summary, 3);
  const double total = std::accumulate(r.begin(), r.end(), 0.0);
  EXPECT_LE(total, 1.0 + 1e-6);
  EXPECT_GT(total, 0.5);
}

TEST(SummaryRwrTest, QueryNodeScoreWellAboveAverage) {
  // The restart mass concentrates near q (q itself need not be the global
  // maximum — a hub adjacent to a low-degree q can score higher).
  Graph g = GenerateBarabasiAlbert(100, 2, 23);
  auto result = *SummarizeGraphToRatio(g, {7}, 0.5);
  auto r = SummaryRwrScores(result.summary, 7);
  const double mean =
      std::accumulate(r.begin(), r.end(), 0.0) / static_cast<double>(r.size());
  EXPECT_GT(r[7], 3.0 * mean);
}

TEST(SummaryRwrTest, CoMembersShareScores) {
  Graph g = GenerateBarabasiAlbert(100, 2, 24);
  auto result = *SummarizeGraphToRatio(g, {}, 0.3);
  const SummaryGraph& s = result.summary;
  auto r = SummaryRwrScores(s, 7);
  for (SupernodeId a : s.ActiveSupernodes()) {
    const auto& m = s.members(a);
    for (size_t i = 1; i < m.size(); ++i) {
      if (m[i] == 7 || m[0] == 7) continue;
      EXPECT_DOUBLE_EQ(r[m[0]], r[m[i]]);
    }
  }
}

TEST(SummaryPhpTest, IdentityMatchesExact) {
  Graph g = GenerateBarabasiAlbert(70, 2, 25);
  SummaryGraph s = SummaryGraph::Identity(g);
  auto exact = ExactPhpScores(g, 4);
  auto approx = SummaryPhpScores(s, 4);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_NEAR(approx[u], exact[u], 1e-6) << "node " << u;
  }
}

TEST(SummaryPhpTest, QueryIsOneOthersBelow) {
  Graph g = GenerateBarabasiAlbert(120, 3, 26);
  auto result = *SummarizeGraphToRatio(g, {9}, 0.4);
  auto p = SummaryPhpScores(result.summary, 9);
  EXPECT_DOUBLE_EQ(p[9], 1.0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_LE(p[u], 1.0 + 1e-9);
    EXPECT_GE(p[u], 0.0);
  }
}

TEST(SummaryQueriesTest, WeightedAndUnweightedAgreeOnIdentity) {
  // All superedge weights are 1 and all blocks are single pairs, so the
  // density is 1 everywhere and the modes coincide.
  Graph g = GenerateBarabasiAlbert(60, 2, 27);
  SummaryGraph s = SummaryGraph::Identity(g);
  auto weighted = SummaryRwrScores(s, 3, 0.05, true);
  auto unweighted = SummaryRwrScores(s, 3, 0.05, false);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_NEAR(weighted[u], unweighted[u], 1e-9);
  }
}

}  // namespace
}  // namespace pegasus
