#include <gtest/gtest.h>

#include <cstdlib>

#include "src/graph/components.h"
#include "src/graph/datasets.h"

namespace pegasus {
namespace {

TEST(DatasetsTest, AllSixPresent) {
  EXPECT_EQ(AllDatasetIds().size(), 6u);
}

TEST(DatasetsTest, TinyScaleIsConnectedAndNamed) {
  for (DatasetId id : AllDatasetIds()) {
    Dataset ds = MakeDataset(id, DatasetScale::kTiny);
    EXPECT_GE(ds.graph.num_nodes(), 50u) << ds.name;
    EXPECT_EQ(ConnectedComponents(ds.graph).num_components, 1u) << ds.name;
    EXPECT_FALSE(ds.abbrev.empty());
    EXPECT_FALSE(ds.summary.empty());
  }
}

TEST(DatasetsTest, Deterministic) {
  Dataset a = MakeDataset(DatasetId::kCaida, DatasetScale::kTiny, 7);
  Dataset b = MakeDataset(DatasetId::kCaida, DatasetScale::kTiny, 7);
  EXPECT_EQ(a.graph.CanonicalEdges(), b.graph.CanonicalEdges());
}

TEST(DatasetsTest, ScalesIncreaseSize) {
  Dataset tiny = MakeDataset(DatasetId::kLastFmAsia, DatasetScale::kTiny);
  Dataset small = MakeDataset(DatasetId::kLastFmAsia, DatasetScale::kSmall);
  EXPECT_GT(small.graph.num_nodes(), tiny.graph.num_nodes());
}

TEST(DatasetsTest, WikipediaAnalogIsDensest) {
  Dataset wk = MakeDataset(DatasetId::kWikipedia, DatasetScale::kTiny);
  Dataset ca = MakeDataset(DatasetId::kCaida, DatasetScale::kTiny);
  EXPECT_GT(wk.graph.MeanDegree(), 3 * ca.graph.MeanDegree());
}

TEST(DatasetsTest, BenchScaleFromEnv) {
  unsetenv("PEGASUS_BENCH_SCALE");
  EXPECT_EQ(BenchScaleFromEnv(), DatasetScale::kDefault);
  setenv("PEGASUS_BENCH_SCALE", "tiny", 1);
  EXPECT_EQ(BenchScaleFromEnv(), DatasetScale::kTiny);
  setenv("PEGASUS_BENCH_SCALE", "paper", 1);
  EXPECT_EQ(BenchScaleFromEnv(), DatasetScale::kPaper);
  unsetenv("PEGASUS_BENCH_SCALE");
}

}  // namespace
}  // namespace pegasus
