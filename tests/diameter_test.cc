#include <gtest/gtest.h>

#include "src/graph/diameter.h"
#include "tests/test_util.h"

namespace pegasus {
namespace {

using ::pegasus::testing::CompleteGraph;
using ::pegasus::testing::PathGraph;
using ::pegasus::testing::StarGraph;

TEST(DiameterTest, CompleteGraphIsNearOne) {
  // All pairs are at exactly 1 hop; the standard interpolation convention
  // (as in SNAP) places the 90-percentile effective diameter at 0.9.
  Graph g = CompleteGraph(20);
  EXPECT_NEAR(EffectiveDiameter(g, 0.9, 20, 1), 0.9, 1e-9);
}

TEST(DiameterTest, StarIsAboutTwo) {
  Graph g = StarGraph(50);
  // Most pairs are leaf-leaf at distance 2.
  const double d = EffectiveDiameter(g, 0.9, 51, 1);
  EXPECT_GT(d, 1.5);
  EXPECT_LE(d, 2.0);
}

TEST(DiameterTest, PathScalesWithLength) {
  const double d_short = EffectiveDiameter(PathGraph(20), 0.9, 20, 1);
  const double d_long = EffectiveDiameter(PathGraph(200), 0.9, 200, 1);
  EXPECT_GT(d_long, d_short * 5);
}

TEST(DiameterTest, TinyGraphs) {
  EXPECT_DOUBLE_EQ(EffectiveDiameter(PathGraph(1)), 0.0);
  EXPECT_DOUBLE_EQ(EffectiveDiameter(Graph()), 0.0);
}

TEST(DiameterTest, PercentileMonotone) {
  Graph g = PathGraph(100);
  const double d50 = EffectiveDiameter(g, 0.5, 100, 1);
  const double d90 = EffectiveDiameter(g, 0.9, 100, 1);
  EXPECT_LT(d50, d90);
}

}  // namespace
}  // namespace pegasus
